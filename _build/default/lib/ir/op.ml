(** IR operations.

    The IR is a conventional load/store register IR for a VLIW target:
    three-address arithmetic over virtual registers, explicit loads and
    stores (byte addressing, 8-byte words), conditional branches with two
    explicit targets, calls, and a few intrinsics ([in]/[out] for workload
    I/O and [alloc] for heap allocation, which carries its static site id
    so the points-to analysis and the heap profiler can name the object).

    Every operation has a program-unique integer id.  Partitioners and
    schedulers never mutate operations; cluster assignments and points-to
    facts live in side tables keyed by id. *)

type icmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type ibinop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** arithmetic shift right *)
  | Icmp of icmp

type fbinop = Fadd | Fsub | Fmul | Fdiv | Fcmp of icmp

type unop =
  | Neg
  | Not  (** logical: 0 -> 1, nonzero -> 0 *)
  | Copy
  | Itof
  | Ftoi  (** truncation *)

type operand =
  | Reg of Reg.t
  | Imm of int
  | Fimm of float

type kind =
  | Ibin of ibinop * Reg.t * operand * operand
  | Fbin of fbinop * Reg.t * operand * operand
  | Un of unop * Reg.t * operand
  | Load of { dst : Reg.t; base : operand; offset : operand }
  | Store of { src : operand; base : operand; offset : operand }
  | Addr of { dst : Reg.t; obj : string }
      (** materialize the address of global [obj] *)
  | Alloc of { dst : Reg.t; size : operand; site : int }
  | Call of { dst : Reg.t option; callee : string; args : operand list }
  | In of { dst : Reg.t; index : operand }
  | Out of operand
  | Cbr of { cond : operand; if_true : Label.t; if_false : Label.t }
  | Jmp of Label.t
  | Ret of operand option
  | Move of { dst : Reg.t; src : Reg.t }
      (** intercluster transfer, inserted after partitioning; never
          produced by the frontend *)

(** Predication (EPIC-style guarded execution).  An operation with guard
    [(r, sense)] executes only when [r <> 0] equals [sense]; otherwise it
    is nullified: no register write, no memory or I/O effect.  Guards are
    produced by the if-conversion pass ([Opt.Ifconvert]); terminators are
    never guarded. *)
type guard = { greg : Reg.t; gsense : bool }

type t = { id : int; kind : kind; guard : guard option }

let make ?guard ~id kind = { id; kind; guard }
let id op = op.id
let kind op = op.kind
let guard op = op.guard
let is_guarded op = Option.is_some op.guard

let with_guard op guard =
  match op.kind with
  | Cbr _ | Jmp _ | Ret _ -> invalid_arg "Op.with_guard: guarded terminator"
  | _ -> { op with guard = Some guard }

let compare a b = Int.compare a.id b.id
let equal a b = Int.equal a.id b.id

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let is_terminator op =
  match op.kind with Cbr _ | Jmp _ | Ret _ -> true | _ -> false

let is_mem op = match op.kind with Load _ | Store _ -> true | _ -> false
let is_load op = match op.kind with Load _ -> true | _ -> false
let is_store op = match op.kind with Store _ -> true | _ -> false
let is_alloc op = match op.kind with Alloc _ -> true | _ -> false
let is_move op = match op.kind with Move _ -> true | _ -> false
let is_call op = match op.kind with Call _ -> true | _ -> false

(** Memory-like for the purposes of data partitioning: operations that
    touch a data object ([Alloc] defines one).  Matches the paper's use of
    "memory operations and calls to malloc()" (Section 3.3). *)
let touches_object op = is_mem op || is_alloc op

(** Operations with externally visible effects whose relative order must
    be preserved by scheduling. *)
let is_sideeffect op =
  match op.kind with
  | Out _ | In _ | Call _ | Alloc _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Defs and uses                                                       *)

let reg_of_operand = function Reg r -> Some r | Imm _ | Fimm _ -> None

let defs op =
  match op.kind with
  | Ibin (_, d, _, _) | Fbin (_, d, _, _) | Un (_, d, _) -> [ d ]
  | Load { dst; _ } | Addr { dst; _ } | Alloc { dst; _ } | In { dst; _ } ->
      [ dst ]
  | Call { dst = Some d; _ } -> [ d ]
  | Call { dst = None; _ } -> []
  | Move { dst; _ } -> [ dst ]
  | Store _ | Out _ | Cbr _ | Jmp _ | Ret _ -> []

let use_operands op =
  match op.kind with
  | Ibin (_, _, a, b) | Fbin (_, _, a, b) -> [ a; b ]
  | Un (_, _, a) -> [ a ]
  | Load { base; offset; _ } -> [ base; offset ]
  | Store { src; base; offset } -> [ src; base; offset ]
  | Addr _ -> []
  | Alloc { size; _ } -> [ size ]
  | Call { args; _ } -> args
  | In { index; _ } -> [ index ]
  | Out a -> [ a ]
  | Cbr { cond; _ } -> [ cond ]
  | Jmp _ -> []
  | Ret (Some a) -> [ a ]
  | Ret None -> []
  | Move { src; _ } -> [ Reg src ]

let uses op =
  let base = List.filter_map reg_of_operand (use_operands op) in
  match op.guard with Some { greg; _ } -> greg :: base | None -> base

(** Successor labels of a terminator (empty for non-terminators and
    returns). *)
let successors op =
  match op.kind with
  | Cbr { if_true; if_false; _ } -> [ if_true; if_false ]
  | Jmp l -> [ l ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Machine mapping                                                     *)

let fu_kind op : Vliw_machine.fu_kind =
  match op.kind with
  | Load _ | Store _ -> FU_memory
  | Fbin _ -> FU_float
  | Un ((Itof | Ftoi), _, _) -> FU_float
  | Cbr _ | Jmp _ | Ret _ | Call _ | Alloc _ -> FU_branch
  | In _ | Out _ -> FU_memory
  | Ibin _ | Un _ | Addr _ -> FU_int
  | Move _ ->
      (* moves travel on the bus; give them the int unit kind only for
         uniform printing — the scheduler special-cases them. *)
      FU_int

let latency (l : Vliw_machine.latencies) op =
  match op.kind with
  | Ibin (Mul, _, _, _) -> l.int_mul
  | Ibin ((Div | Rem), _, _, _) -> l.int_div
  | Ibin (Icmp _, _, _, _) -> l.compare
  | Ibin _ -> l.int_alu
  | Fbin (Fmul, _, _, _) -> l.float_mul
  | Fbin (Fdiv, _, _, _) -> l.float_div
  | Fbin (Fcmp _, _, _, _) -> l.compare
  | Fbin _ -> l.float_alu
  | Un ((Itof | Ftoi), _, _) -> l.float_alu
  | Un _ -> l.int_alu
  | Load _ -> l.load
  | Store _ -> l.store
  | Addr _ -> l.int_alu
  | Alloc _ -> l.int_alu
  | Call _ -> l.branch
  | In _ -> l.load
  | Out _ -> l.store
  | Cbr _ | Jmp _ | Ret _ -> l.branch
  | Move _ -> l.local_move

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)

let icmp_name = function
  | Ceq -> "eq"
  | Cne -> "ne"
  | Clt -> "lt"
  | Cle -> "le"
  | Cgt -> "gt"
  | Cge -> "ge"

let ibinop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Icmp c -> "cmp." ^ icmp_name c

let fbinop_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fcmp c -> "fcmp." ^ icmp_name c

let unop_name = function
  | Neg -> "neg"
  | Not -> "not"
  | Copy -> "copy"
  | Itof -> "itof"
  | Ftoi -> "ftoi"

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Fmt.int ppf i
  | Fimm f -> Fmt.pf ppf "%h" f

let pp ppf op =
  (match op.guard with
  | Some { greg; gsense } ->
      Fmt.pf ppf "(%s%a) " (if gsense then "" else "!") Reg.pp greg
  | None -> ());
  let p fmt = Fmt.pf ppf fmt in
  match op.kind with
  | Ibin (o, d, a, b) ->
      p "%a = %s %a, %a" Reg.pp d (ibinop_name o) pp_operand a pp_operand b
  | Fbin (o, d, a, b) ->
      p "%a = %s %a, %a" Reg.pp d (fbinop_name o) pp_operand a pp_operand b
  | Un (o, d, a) -> p "%a = %s %a" Reg.pp d (unop_name o) pp_operand a
  | Load { dst; base; offset } ->
      p "%a = load [%a + %a]" Reg.pp dst pp_operand base pp_operand offset
  | Store { src; base; offset } ->
      p "store %a -> [%a + %a]" pp_operand src pp_operand base pp_operand
        offset
  | Addr { dst; obj } -> p "%a = addr @%s" Reg.pp dst obj
  | Alloc { dst; size; site } ->
      p "%a = alloc %a (site %d)" Reg.pp dst pp_operand size site
  | Call { dst = Some d; callee; args } ->
      p "%a = call %s(%a)" Reg.pp d callee
        Fmt.(list ~sep:comma pp_operand)
        args
  | Call { dst = None; callee; args } ->
      p "call %s(%a)" callee Fmt.(list ~sep:comma pp_operand) args
  | In { dst; index } -> p "%a = in [%a]" Reg.pp dst pp_operand index
  | Out a -> p "out %a" pp_operand a
  | Cbr { cond; if_true; if_false } ->
      p "br %a ? %a : %a" pp_operand cond Label.pp if_true Label.pp if_false
  | Jmp l -> p "jmp %a" Label.pp l
  | Ret (Some a) -> p "ret %a" pp_operand a
  | Ret None -> p "ret"
  | Move { dst; src } -> p "%a = xfer %a" Reg.pp dst Reg.pp src

let to_string op = Fmt.str "%a" pp op
