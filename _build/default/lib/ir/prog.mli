(** Whole programs: globals plus functions, with ["main"] as entry.
    Operation ids are unique program-wide (checked by [Validate]). *)

type t

(** Raises [Invalid_argument] on duplicate function or global names. *)
val v : globals:Data.global list -> funcs:Func.t list -> op_count:int -> t

val globals : t -> Data.global list
val funcs : t -> Func.t list

(** Op ids are in [0 .. op_count - 1]. *)
val op_count : t -> int

(** Raises [Invalid_argument] on unknown names. *)
val find_func : t -> string -> Func.t

val find_func_opt : t -> string -> Func.t option
val main : t -> Func.t
val find_global : t -> string -> Data.global
val iter_ops : (Op.t -> unit) -> t -> unit
val fold_ops : ('a -> Op.t -> 'a) -> 'a -> t -> 'a
val num_ops : t -> int

(** Map from op id to (op, function, block). *)
val op_index : t -> (int, Op.t * Func.t * Block.t) Hashtbl.t

(** All static malloc sites, sorted. *)
val alloc_sites : t -> int list

val pp : t Fmt.t
