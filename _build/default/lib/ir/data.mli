(** Data objects: the units the data partitioner assigns homes to.

    Every piece of addressable data is either a static global (scalar or
    array) or the set of heap cells allocated by one static malloc call
    site (paper Section 3.2).  All elements are 8-byte words. *)

val word_bytes : int

(** Initial contents of a global; floats are stored via
    [Int64.bits_of_float]. *)
type init = Zero | Words of int64 array

type global = {
  g_name : string;
  g_elems : int;  (** number of 8-byte elements *)
  g_init : init;
  g_is_float : bool;  (** printing hint only *)
}

(** Build a global; rejects non-positive sizes and oversized
    initializers. *)
val global : ?is_float:bool -> ?init:init -> string -> int -> global

val global_bytes : global -> int

(** Object identity: globals by name, heap objects by allocation site. *)
type obj = Global of string | Heap of int

val compare_obj : obj -> obj -> int
val equal_obj : obj -> obj -> bool
val pp_obj : obj Fmt.t
val obj_to_string : obj -> string

module Obj_set : Set.S with type elt = obj
module Obj_map : Map.S with type key = obj

(** The object table: all partitionable objects of a program with their
    sizes in bytes (heap sizes come from profiling). *)
type table

val table_of :
  globals:global list -> heap_sizes:(int * int) list -> table

val table_length : table -> int
val obj_of_id : table -> int -> obj
val size_of_id : table -> int -> int

(** Raises [Invalid_argument] on unknown objects. *)
val id_of_obj : table -> obj -> int

val mem_obj : table -> obj -> bool
val size_of_obj : table -> obj -> int
val total_bytes : table -> int
val fold_objects : ('a -> int -> obj -> int -> 'a) -> 'a -> table -> 'a
val pp_table : table Fmt.t
