(** Structural well-formedness checks for programs.

    [check] raises [Invalid of message] describing the first violation, or
    returns unit.  The checks are structural (ids, labels, references);
    possibly-uninitialized registers are a dataflow property checked by
    [Vliw_analysis]. *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let check_func (p : Prog.t) (f : Func.t) =
  let labels = Label.Set.of_list (List.map Block.label (Func.blocks f)) in
  List.iter
    (fun b ->
      (* branch targets exist *)
      List.iter
        (fun l ->
          if not (Label.Set.mem l labels) then
            fail "%s/%a: branch to unknown label %a" (Func.name f) Label.pp
              (Block.label b) Label.pp l)
        (Block.successors b);
      List.iter
        (fun op ->
          (* registers in range *)
          let check_reg r =
            if Reg.to_int r < 0 || Reg.to_int r >= Func.reg_count f then
              fail "%s/%a: op %d references out-of-range register %a"
                (Func.name f) Label.pp (Block.label b) (Op.id op) Reg.pp r
          in
          List.iter check_reg (Op.defs op);
          List.iter check_reg (Op.uses op);
          (* op ids in range *)
          if Op.id op < 0 || Op.id op >= Prog.op_count p then
            fail "%s: op id %d out of range" (Func.name f) (Op.id op);
          (* references resolve *)
          (match Op.kind op with
          | Op.Addr { obj; _ } ->
              if
                not
                  (List.exists
                     (fun g -> String.equal g.Data.g_name obj)
                     (Prog.globals p))
              then fail "%s: addr of unknown global %s" (Func.name f) obj
          | Op.Call { callee; _ } ->
              if Option.is_none (Prog.find_func_opt p callee) then
                fail "%s: call to unknown function %s" (Func.name f) callee
          | _ -> ()))
        (Block.ops b))
    (Func.blocks f);
  (* params in range *)
  List.iter
    (fun r ->
      if Reg.to_int r < 0 || Reg.to_int r >= Func.reg_count f then
        fail "%s: parameter %a out of range" (Func.name f) Reg.pp r)
    (Func.params f)

let check (p : Prog.t) =
  (* op ids unique *)
  let seen = Hashtbl.create (Prog.op_count p * 2) in
  Prog.iter_ops
    (fun op ->
      let i = Op.id op in
      if Hashtbl.mem seen i then fail "duplicate op id %d" i;
      Hashtbl.replace seen i ())
    p;
  (* alloc sites unique *)
  let sites = Hashtbl.create 16 in
  Prog.iter_ops
    (fun op ->
      match Op.kind op with
      | Op.Alloc { site; _ } ->
          if Hashtbl.mem sites site then fail "duplicate alloc site %d" site;
          Hashtbl.replace sites site ()
      | _ -> ())
    p;
  List.iter (check_func p) (Prog.funcs p);
  (* entry point *)
  match Prog.find_func_opt p "main" with
  | None -> fail "program has no main function"
  | Some m ->
      if Func.params m <> [] then fail "main must take no parameters"

let is_valid p =
  match check p with () -> true | exception Invalid _ -> false
