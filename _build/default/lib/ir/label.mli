(** Basic-block labels (function-local). *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val of_string : string -> t
val to_string : t -> string
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Fresh-label generator (["bb0"], ["bb1"], ...). *)
module Gen : sig
  type gen
  type t = gen

  val make : ?prefix:string -> unit -> t
  val fresh : t -> string
end
