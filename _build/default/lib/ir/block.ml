(** Basic blocks: a label, a straight-line body and a single terminator.

    The body never contains terminators; the terminator is a conditional
    branch, jump or return.  The computation partitioner treats each block
    as a region (see DESIGN.md). *)

type t = { label : Label.t; body : Op.t list; term : Op.t }

let v ~label ~body ~term =
  if not (Op.is_terminator term) then
    invalid_arg "Block.v: terminator operation expected";
  if List.exists Op.is_terminator body then
    invalid_arg "Block.v: terminator in block body";
  { label; body; term }

let label b = b.label
let body b = b.body
let term b = b.term

(** All operations including the terminator, in program order. *)
let ops b = b.body @ [ b.term ]

let num_ops b = List.length b.body + 1
let successors b = Op.successors b.term

let with_body b body = v ~label:b.label ~body ~term:b.term
let with_term b term = v ~label:b.label ~body:b.body ~term

(** Registers defined / used anywhere in the block. *)
let defs b = List.concat_map Op.defs (ops b)
let uses b = List.concat_map Op.uses (ops b)

let pp ppf b =
  Fmt.pf ppf "@[<v>%a:@," Label.pp b.label;
  List.iter (fun op -> Fmt.pf ppf "  %a@," Op.pp op) b.body;
  Fmt.pf ppf "  %a@]" Op.pp b.term
