(** Clustered-VLIW machine description.

    The model follows Section 4.1 of Chu & Mahlke (CGO 2006): a
    multicluster VLIW in which each cluster owns a register file, a set
    of function units and a private data memory, connected by an
    intercluster bus of fixed bandwidth and latency. *)

(** Kinds of function units.  Every operation executes on exactly one
    kind; intercluster moves use the bus, modelled separately. *)
type fu_kind = FU_int | FU_float | FU_memory | FU_branch

val all_fu_kinds : fu_kind list
val fu_kind_index : fu_kind -> int
val fu_kind_count : int
val fu_kind_name : fu_kind -> string
val pp_fu_kind : fu_kind Fmt.t

(** A single cluster: function-unit counts and local memory capacity in
    bytes (the capacity steers the data partitioner's balance objective;
    it is not a hard simulator limit). *)
type cluster = { fu_counts : int array; memory_bytes : int }

val cluster :
  ?memory_bytes:int ->
  ints:int ->
  floats:int ->
  mems:int ->
  branches:int ->
  unit ->
  cluster

val fu_count : cluster -> fu_kind -> int

(** Intercluster bus: [moves_per_cycle] transfers may start per cycle,
    each completing after [move_latency] cycles (pipelined). *)
type network = { move_latency : int; moves_per_cycle : int }

(** Operation latencies in cycles from issue to result availability. *)
type latencies = {
  int_alu : int;
  int_mul : int;
  int_div : int;
  float_alu : int;
  float_mul : int;
  float_div : int;
  load : int;
  store : int;
  branch : int;
  compare : int;
  local_move : int;
}

(** "Similar to the Itanium" per the paper. *)
val itanium_latencies : latencies

type t = {
  name : string;
  clusters : cluster array;
  network : network;
  latencies : latencies;
}

(** Build a machine; raises [Invalid_argument] on empty cluster arrays
    or nonsensical network parameters. *)
val v :
  name:string ->
  clusters:cluster array ->
  network:network ->
  latencies:latencies ->
  t

val num_clusters : t -> int
val cluster_of : t -> int -> cluster
val move_latency : t -> int
val moves_per_cycle : t -> int
val total_fu : t -> fu_kind -> int
val is_homogeneous : t -> bool

(** The paper's reference machine: 2 homogeneous clusters with 2 integer
    / 1 float / 1 memory / 1 branch unit each and a 1-move/cycle bus. *)
val paper_machine : ?move_latency:int -> unit -> t

(** [n] homogeneous clusters of the paper's shape. *)
val scaled_machine : ?move_latency:int -> clusters:int -> unit -> t

val unified_twin : t -> t
val pp : t Fmt.t
