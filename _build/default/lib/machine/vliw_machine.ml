(** Clustered-VLIW machine description.

    The model follows Section 4.1 of Chu & Mahlke, CGO 2006: a multicluster
    VLIW in which each cluster owns a register file, a set of function units
    and (optionally) a private data memory, connected by an intercluster bus
    of fixed bandwidth and latency.  The reference machine is homogeneous
    with two clusters, each having 2 integer, 1 float, 1 memory and 1 branch
    unit, Itanium-like operation latencies, and an intercluster network that
    accepts one move per cycle with a latency of 1, 5 or 10 cycles. *)

(** Kinds of function units.  Every operation executes on exactly one kind;
    intercluster moves use the bus, which is modelled separately. *)
type fu_kind =
  | FU_int
  | FU_float
  | FU_memory
  | FU_branch

let all_fu_kinds = [ FU_int; FU_float; FU_memory; FU_branch ]

let fu_kind_index = function
  | FU_int -> 0
  | FU_float -> 1
  | FU_memory -> 2
  | FU_branch -> 3

let fu_kind_count = 4

let fu_kind_name = function
  | FU_int -> "int"
  | FU_float -> "float"
  | FU_memory -> "memory"
  | FU_branch -> "branch"

let pp_fu_kind ppf k = Fmt.string ppf (fu_kind_name k)

(** A single cluster: how many units of each kind it has and the capacity
    of its local data memory in bytes.  [memory_bytes] only constrains the
    data partitioner's balance objective; it is not a hard limit enforced
    by the simulator (the paper balances sizes rather than enforcing
    capacities). *)
type cluster = {
  fu_counts : int array;  (** indexed by [fu_kind_index] *)
  memory_bytes : int;
}

let cluster ?(memory_bytes = 32768) ~ints ~floats ~mems ~branches () =
  if ints < 0 || floats < 0 || mems < 0 || branches < 0 then
    invalid_arg "Vliw_machine.cluster: negative unit count";
  { fu_counts = [| ints; floats; mems; branches |]; memory_bytes }

let fu_count c k = c.fu_counts.(fu_kind_index k)

(** Intercluster communication network: a shared bus that can initiate
    [moves_per_cycle] transfers per cycle, each completing after
    [move_latency] cycles. *)
type network = {
  move_latency : int;
  moves_per_cycle : int;
}

(** Operation latencies, in cycles from issue to availability of the
    result.  Values are "similar to the Itanium" per the paper. *)
type latencies = {
  int_alu : int;
  int_mul : int;
  int_div : int;
  float_alu : int;
  float_mul : int;
  float_div : int;
  load : int;
  store : int;
  branch : int;
  compare : int;
  local_move : int;  (** register-to-register copy within a cluster *)
}

let itanium_latencies =
  {
    int_alu = 1;
    int_mul = 3;
    int_div = 8;
    float_alu = 4;
    float_mul = 4;
    float_div = 12;
    load = 2;
    store = 1;
    branch = 1;
    compare = 1;
    local_move = 1;
  }

type t = {
  name : string;
  clusters : cluster array;
  network : network;
  latencies : latencies;
}

let v ~name ~clusters ~network ~latencies =
  if Array.length clusters = 0 then
    invalid_arg "Vliw_machine.v: machine needs at least one cluster";
  if network.move_latency < 0 || network.moves_per_cycle < 1 then
    invalid_arg "Vliw_machine.v: invalid network parameters";
  { name; clusters; network; latencies }

let num_clusters m = Array.length m.clusters
let cluster_of m i = m.clusters.(i)
let move_latency m = m.network.move_latency
let moves_per_cycle m = m.network.moves_per_cycle

(** Total units of a given kind across all clusters. *)
let total_fu m k =
  Array.fold_left (fun acc c -> acc + fu_count c k) 0 m.clusters

let is_homogeneous m =
  let c0 = m.clusters.(0) in
  Array.for_all (fun c -> c.fu_counts = c0.fu_counts) m.clusters

(** The paper's reference machine: 2 homogeneous clusters, each with
    2 integer / 1 float / 1 memory / 1 branch unit, Itanium-like latencies,
    bus bandwidth of one move per cycle. *)
let paper_machine ?(move_latency = 5) () =
  let c = cluster ~ints:2 ~floats:1 ~mems:1 ~branches:1 () in
  v
    ~name:(Fmt.str "2cluster-2i1f1m1b-lat%d" move_latency)
    ~clusters:[| c; c |]
    ~network:{ move_latency; moves_per_cycle = 1 }
    ~latencies:itanium_latencies

(** A wider machine used by the cluster-count ablation: [n] homogeneous
    clusters of the paper's shape. *)
let scaled_machine ?(move_latency = 5) ~clusters:n () =
  if n < 1 then invalid_arg "Vliw_machine.scaled_machine";
  let c = cluster ~ints:2 ~floats:1 ~mems:1 ~branches:1 () in
  v
    ~name:(Fmt.str "%dcluster-2i1f1m1b-lat%d" n move_latency)
    ~clusters:(Array.make n c)
    ~network:{ move_latency; moves_per_cycle = 1 }
    ~latencies:itanium_latencies

(** A unified-memory twin of [m]: same datapath, but the performance model
    treats all memories as one multiported memory (no data homes).  The
    machine description itself is unchanged; this is just a convenient
    alias used by drivers for labelling. *)
let unified_twin m = { m with name = m.name ^ "-unified" }

let pp ppf m =
  Fmt.pf ppf "@[<v>machine %s:@," m.name;
  Array.iteri
    (fun i c ->
      Fmt.pf ppf "  cluster %d: %a, %d B memory@," i
        Fmt.(list ~sep:(any " ") (fun ppf k ->
          Fmt.pf ppf "%d%s" (fu_count c k) (fu_kind_name k)))
        all_fu_kinds c.memory_bytes)
    m.clusters;
  Fmt.pf ppf "  network: %d move(s)/cycle, latency %d@]"
    m.network.moves_per_cycle m.network.move_latency
