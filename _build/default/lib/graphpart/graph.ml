(** Undirected weighted graphs with vector (multi-constraint) node
    weights, in adjacency-list form.

    This is the input format of the multilevel partitioner ([Partitioner]),
    our stand-in for METIS: the paper partitions its program-level graph
    with METIS using "multiple node weights" (Section 3.3.2). *)

type t = {
  n : int;
  ncon : int;  (** number of node-weight constraints *)
  vwgt : int array array;  (** [vwgt.(v).(c)] = weight of [v] under [c] *)
  adj : (int * int) list array;  (** neighbor, edge weight; symmetric *)
}

let num_nodes g = g.n
let num_constraints g = g.ncon
let node_weight g v c = g.vwgt.(v).(c)
let neighbors g v = g.adj.(v)

(** Total weight under constraint [c]. *)
let total_weight g c =
  let s = ref 0 in
  for v = 0 to g.n - 1 do
    s := !s + g.vwgt.(v).(c)
  done;
  !s

let num_edges g =
  Array.fold_left (fun acc l -> acc + List.length l) 0 g.adj / 2

(** Build a graph.  [edges] are (u, v, w) triples with [u <> v]; parallel
    edges are merged by summing weights.  Node weights must all have
    length [ncon]. *)
let create ~ncon ~weights ~edges =
  let n = Array.length weights in
  Array.iteri
    (fun v w ->
      if Array.length w <> ncon then
        invalid_arg
          (Fmt.str "Graph.create: node %d has %d weights, expected %d" v
             (Array.length w) ncon))
    weights;
  let tbl = Hashtbl.create (List.length edges * 2) in
  List.iter
    (fun (u, v, w) ->
      if u = v then invalid_arg "Graph.create: self edge";
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.create: edge endpoint out of range";
      if w < 0 then invalid_arg "Graph.create: negative edge weight";
      let key = if u < v then (u, v) else (v, u) in
      Hashtbl.replace tbl key
        (w + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    edges;
  let adj = Array.make n [] in
  Hashtbl.iter
    (fun (u, v) w ->
      adj.(u) <- (v, w) :: adj.(u);
      adj.(v) <- (u, w) :: adj.(v))
    tbl;
  { n; ncon; vwgt = Array.map Array.copy weights; adj }

(** Weight of edges crossing the partition. *)
let edge_cut g (part : int array) =
  let cut = ref 0 in
  for v = 0 to g.n - 1 do
    List.iter
      (fun (u, w) -> if v < u && part.(v) <> part.(u) then cut := !cut + w)
      g.adj.(v)
  done;
  !cut

(** Per-part weight sums under constraint [c]. *)
let part_weights g (part : int array) ~nparts c =
  let w = Array.make nparts 0 in
  for v = 0 to g.n - 1 do
    w.(part.(v)) <- w.(part.(v)) + g.vwgt.(v).(c)
  done;
  w

let pp ppf g =
  Fmt.pf ppf "@[<v>graph: %d nodes, %d edges, %d constraint(s)@]" g.n
    (num_edges g) g.ncon
