(** Multilevel multi-constraint graph bisection (METIS stand-in):
    heavy-edge-matching coarsening, greedy-growing initial bisection,
    Fiduccia-Mattheyses refinement with rollback at every uncoarsening
    level.  Deterministic for a given seed. *)

type config = {
  imbalance : float array;
      (** per-constraint balance tolerance, e.g. 0.1 = 10% *)
  targets : float array option;
      (** per-constraint share of part 0 (default 0.5 everywhere); for
          machines with asymmetric memories or datapaths *)
  seed : int;
  coarsen_until : int;  (** stop coarsening below this many nodes *)
  initial_tries : int;  (** greedy-growing attempts on the coarsest graph *)
  fm_max_bad_moves : int;  (** FM hill-climbing patience *)
}

val default_config : ncon:int -> config

(** Bisect a graph; returns a 0/1 part per node.  Balance caps apply per
    constraint; when exact feasibility is impossible (bin-packing), the
    result is as close as FM gets. *)
val bisect : ?config:config -> Graph.t -> int array

(** Recursive bisection into a power-of-two number of parts. *)
val kway : ?config:config -> Graph.t -> nparts:int -> int array
