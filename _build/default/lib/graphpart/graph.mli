(** Undirected weighted graphs with vector (multi-constraint) node
    weights — the input format of the multilevel partitioner, our METIS
    stand-in. *)

type t

val num_nodes : t -> int
val num_constraints : t -> int

(** [node_weight g v c] is node [v]'s weight under constraint [c]. *)
val node_weight : t -> int -> int -> int

(** Neighbors of a node with edge weights; symmetric. *)
val neighbors : t -> int -> (int * int) list

val total_weight : t -> int -> int
val num_edges : t -> int

(** Build a graph from per-node weight vectors (all of length [ncon])
    and [(u, v, w)] edges.  Parallel edges are merged by summing their
    weights; self edges and out-of-range endpoints are rejected. *)
val create :
  ncon:int -> weights:int array array -> edges:(int * int * int) list -> t

(** Total weight of edges crossing the partition. *)
val edge_cut : t -> int array -> int

(** Per-part weight sums under one constraint. *)
val part_weights : t -> int array -> nparts:int -> int -> int array

val pp : t Fmt.t
