lib/graphpart/graph.ml: Array Fmt Hashtbl List Option
