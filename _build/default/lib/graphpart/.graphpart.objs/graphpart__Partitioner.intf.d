lib/graphpart/partitioner.mli: Graph
