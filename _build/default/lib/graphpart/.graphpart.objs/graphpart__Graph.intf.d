lib/graphpart/graph.mli: Fmt
