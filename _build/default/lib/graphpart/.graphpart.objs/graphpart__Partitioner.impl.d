lib/graphpart/partitioner.ml: Array Float Fun Graph Hashtbl List Random
