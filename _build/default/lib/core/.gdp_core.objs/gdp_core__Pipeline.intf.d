lib/core/pipeline.mli: Benchsuite Partition Vliw_interp Vliw_ir Vliw_machine Vliw_opt Vliw_sched
