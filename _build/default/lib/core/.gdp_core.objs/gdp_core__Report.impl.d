lib/core/report.ml: Array Float Fmt List Printf String
