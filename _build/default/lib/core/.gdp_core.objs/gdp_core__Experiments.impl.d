lib/core/experiments.ml: Benchsuite Float Fmt Hashtbl List Partition Pipeline Report Unix Vliw_machine Vliw_sched
