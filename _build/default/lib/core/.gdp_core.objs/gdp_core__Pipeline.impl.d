lib/core/pipeline.ml: Benchsuite Fmt List Minic Partition Prog Vliw_interp Vliw_ir Vliw_machine Vliw_opt Vliw_sched
