lib/core/exhaustive.ml: Array Benchsuite Buffer Float Fmt List Partition Pipeline Vliw_machine Vliw_sched
