lib/core/ablations.ml: Benchsuite Fmt Hashtbl List Option Partition Pipeline Report Vliw_ir Vliw_machine Vliw_sched
