(** Plain-text rendering of experiment results: aligned tables and
    horizontal bar charts, so `bench/main.exe` output reads like the
    paper's figures. *)

let bar ?(width = 40) ~max_value v =
  if max_value <= 0. then ""
  else
    let n =
      int_of_float (Float.round (v /. max_value *. float width))
      |> max 0 |> min width
    in
    String.make n '#'

(** Render rows of (label, cells) with a header, aligning columns. *)
let table ppf ~header rows =
  let ncols = List.length header in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun (label, cells) ->
      let all = label :: cells in
      List.iteri
        (fun i s ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length s))
        all)
    rows;
  let pad i s =
    let w = if i < ncols then widths.(i) else String.length s in
    if i = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s
  in
  Fmt.pf ppf "%s@." (String.concat "  " (List.mapi pad header));
  Fmt.pf ppf "%s@."
    (String.concat "--"
       (List.init ncols (fun i -> String.make widths.(i) '-')));
  List.iter
    (fun (label, cells) ->
      Fmt.pf ppf "%s@." (String.concat "  " (List.mapi pad (label :: cells))))
    rows

(** A labeled horizontal bar chart (used for the figure-style outputs). *)
let bar_chart ppf ~title ~unit rows =
  Fmt.pf ppf "@.%s@." title;
  let max_value =
    List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0. rows
  in
  let lw =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  List.iter
    (fun (label, v) ->
      Fmt.pf ppf "  %-*s %8.2f%s |%s@." lw label v unit
        (bar ~max_value (Float.abs v)))
    rows

let percent ~base v =
  if base = 0 then 0. else (float v -. float base) /. float base *. 100.

let ratio ~base v = if v = 0 then Float.nan else float base /. float v
