(** Register promotion of global scalars accessed by exactly one
    call-free function through direct loads/stores: one load at entry,
    register copies in the body, write-back before every return
    (IMPACT-style). *)

open Vliw_ir

(** (global, function) pairs eligible for promotion. *)
val promotable : Prog.t -> (string * string) list

val run : Prog.t -> Prog.t
