(** If-conversion: predicated hyperblock formation.

    The paper's infrastructure (Trimaran/IMPACT targeting an Itanium-like
    EPIC machine) forms large scheduling regions by if-converting
    branchy code into straight-line predicated blocks.  Without this the
    ADPCM-style benchmarks decompose into 2-5 op basic blocks with no
    instruction-level parallelism and cluster partitioning has nothing to
    do.  This pass replays that substrate:

    - {b diamonds / triangles}: a block [A] ending in [cbr c ? T : F]
      where [T] (and [F], when it is not the join itself) are
      single-predecessor, side-exit-free blocks converging on one join
      [J]: the branch is removed, [T]'s body is appended under guard
      [(p, true)], [F]'s under [(p, false)], and [A] jumps to [J]
      ([p] is a fresh register holding the branch condition — the
      condition must be captured because converted code may overwrite
      its inputs);
    - {b straightening} (in [Straighten]) then merges [A] with [J] when
      [J] has no other predecessors, growing the hyperblock;
    - conversion iterates to a fixpoint, bounded by [max_block_ops].

    Already-guarded code is re-convertible: nested guards compose by
    conjunction into a fresh predicate ([p_both = p_outer & p_inner]
    computed under no guard, which is safe because both inputs are
    plain registers). *)

open Vliw_ir

type config = {
  max_block_ops : int;  (** do not grow hyperblocks beyond this *)
  max_branch_ops : int;  (** max ops convertible per branch side *)
}

let default_config = { max_block_ops = 160; max_branch_ops = 48 }

(** Ops that cannot be nullified safely or that end regions. *)
let convertible_op op =
  match Op.kind op with
  | Op.Call _ -> false (* calls under guard complicate the call graph *)
  | Op.Cbr _ | Op.Jmp _ | Op.Ret _ -> false
  | _ -> true

let convertible_block (b : Block.t) ~max_ops =
  List.length (Block.body b) <= max_ops
  && List.for_all convertible_op (Block.body b)
  && match Op.kind (Block.term b) with Op.Jmp _ -> true | _ -> false

(** Apply guard [(p, sense)] to every op of [body], composing with
    existing guards through fresh conjunction predicates. *)
let guard_body ~fresh_reg ~fresh_op p sense body =
  List.concat_map
    (fun op ->
      match Op.guard op with
      | None -> [ Op.with_guard op { Op.greg = p; gsense = sense } ]
      | Some { Op.greg = q; gsense = qs } ->
          (* combined = (p == sense) && (q == qs) *)
          let pv = fresh_reg () in
          let qv = fresh_reg () in
          let both = fresh_reg () in
          let cmp_p =
            fresh_op
              (Op.Ibin
                 ( Op.Icmp (if sense then Op.Cne else Op.Ceq),
                   pv,
                   Op.Reg p,
                   Op.Imm 0 ))
          in
          let cmp_q =
            fresh_op
              (Op.Ibin
                 ( Op.Icmp (if qs then Op.Cne else Op.Ceq),
                   qv,
                   Op.Reg q,
                   Op.Imm 0 ))
          in
          let conj =
            fresh_op (Op.Ibin (Op.And, both, Op.Reg pv, Op.Reg qv))
          in
          [
            cmp_p;
            cmp_q;
            conj;
            Op.make ~id:(Op.id op)
              ~guard:{ Op.greg = both; gsense = true }
              (Op.kind op);
          ])
    body

type fresh = { mutable next_reg : int; mutable next_op : int }

(** One conversion step on function [f]: find a convertible diamond or
    triangle and flatten it.  Returns [None] at fixpoint. *)
let convert_one ~(cfg : config) ~(fr : fresh) (f : Func.t) : Func.t option =
  let preds = Func.predecessor_map f in
  let pred_count l =
    List.length (Option.value ~default:[] (Label.Map.find_opt l preds))
  in
  let blocks = Func.blocks f in
  let find_block l = Func.find_block f l in
  let fresh_reg () =
    let r = fr.next_reg in
    fr.next_reg <- r + 1;
    Reg.of_int r
  in
  let fresh_op kind =
    let id = fr.next_op in
    fr.next_op <- id + 1;
    Op.make ~id kind
  in
  let try_convert (a : Block.t) : (Block.t * Label.Set.t) option =
    match Op.kind (Block.term a) with
    | Op.Cbr { cond; if_true; if_false } when not (Label.equal if_true if_false)
      -> (
        let t = find_block if_true and fblk = find_block if_false in
        let t_ok =
          pred_count if_true = 1
          && convertible_block t ~max_ops:cfg.max_branch_ops
        in
        let f_ok =
          pred_count if_false = 1
          && convertible_block fblk ~max_ops:cfg.max_branch_ops
        in
        let succ_of b =
          match Op.kind (Block.term b) with
          | Op.Jmp l -> Some l
          | _ -> None
        in
        (* capture the condition in a fresh predicate register first *)
        let build ~t_body ~f_body ~join ~consumed =
          let total =
            List.length (Block.body a)
            + List.length t_body + List.length f_body
          in
          if total > cfg.max_block_ops then None
          else begin
            let p = fresh_reg () in
            let setp = fresh_op (Op.Un (Op.Copy, p, cond)) in
            let t_guarded = guard_body ~fresh_reg ~fresh_op p true t_body in
            let f_guarded = guard_body ~fresh_reg ~fresh_op p false f_body in
            let term = fresh_op (Op.Jmp join) in
            Some
              ( Block.v ~label:(Block.label a)
                  ~body:(Block.body a @ (setp :: t_guarded) @ f_guarded)
                  ~term,
                consumed )
          end
        in
        match (t_ok, f_ok) with
        | true, true -> (
            match (succ_of t, succ_of fblk) with
            | Some jt, Some jf when Label.equal jt jf ->
                (* diamond *)
                build ~t_body:(Block.body t) ~f_body:(Block.body fblk)
                  ~join:jt
                  ~consumed:(Label.Set.of_list [ if_true; if_false ])
            | _ -> (
                (* maybe a triangle through T *)
                match succ_of t with
                | Some jt when Label.equal jt if_false ->
                    build ~t_body:(Block.body t) ~f_body:[] ~join:if_false
                      ~consumed:(Label.Set.singleton if_true)
                | _ -> (
                    match succ_of fblk with
                    | Some jf when Label.equal jf if_true ->
                        build ~t_body:[] ~f_body:(Block.body fblk)
                          ~join:if_true
                          ~consumed:(Label.Set.singleton if_false)
                    | _ -> None)))
        | true, false -> (
            match succ_of t with
            | Some jt when Label.equal jt if_false ->
                build ~t_body:(Block.body t) ~f_body:[] ~join:if_false
                  ~consumed:(Label.Set.singleton if_true)
            | _ -> None)
        | false, true -> (
            match succ_of fblk with
            | Some jf when Label.equal jf if_true ->
                build ~t_body:[] ~f_body:(Block.body fblk) ~join:if_true
                  ~consumed:(Label.Set.singleton if_false)
            | _ -> None)
        | false, false -> None)
    | _ -> None
  in
  let rec scan = function
    | [] -> None
    | a :: rest -> (
        match try_convert a with
        | Some (a', consumed) ->
            let blocks' =
              List.filter_map
                (fun b ->
                  if Label.equal (Block.label b) (Block.label a') then
                    Some a'
                  else if Label.Set.mem (Block.label b) consumed then None
                  else Some b)
                blocks
            in
            Some (Func.v ~name:(Func.name f) ~params:(Func.params f)
                    ~blocks:blocks' ~reg_count:fr.next_reg)
        | None -> scan rest)
  in
  scan blocks

let convert_func ~cfg ~fr (f : Func.t) : Func.t =
  let rec fixpoint f =
    (* interleave straightening so joins fold into the hyperblock *)
    let f = Straighten.merge_func ~max_ops:cfg.max_block_ops f in
    match convert_one ~cfg ~fr f with
    | Some f' -> fixpoint f'
    | None -> f
  in
  let f = fixpoint f in
  Straighten.merge_func ~max_ops:max_int f

(** If-convert a whole program. *)
let run ?(config = default_config) (prog : Prog.t) : Prog.t =
  let fr = { next_reg = 0; next_op = Prog.op_count prog } in
  let funcs =
    List.map
      (fun f ->
        fr.next_reg <- Func.reg_count f;
        let f' = convert_func ~cfg:config ~fr f in
        Func.v ~name:(Func.name f') ~params:(Func.params f')
          ~blocks:(Func.blocks f') ~reg_count:fr.next_reg)
      (Prog.funcs prog)
  in
  let p =
    Prog.v ~globals:(Prog.globals prog) ~funcs ~op_count:fr.next_op
  in
  (try Validate.check p
   with Validate.Invalid m ->
     invalid_arg ("Ifconvert.run produced invalid IR: " ^ m));
  p
