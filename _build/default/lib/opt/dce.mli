(** Dead-code elimination: drops operations that neither produce an
    observable effect (stores, I/O, calls, allocations, terminators) nor
    transitively feed one, using conservative register-level liveness. *)

open Vliw_ir

val run : Prog.t -> Prog.t
