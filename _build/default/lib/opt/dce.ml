(** Dead-code elimination.

    Removes operations that neither produce an observable effect nor
    (transitively) feed one.  Liveness is computed at the register level
    over the whole function, which is conservative but safe in the
    non-SSA IR: a register is needed if any kept operation uses it, and
    an operation is kept if it has a side effect, is a terminator, or
    defines a needed register.

    Stores, I/O, calls and allocations are always kept ([Alloc] also
    because allocation order determines heap addresses).  Guarded
    operations follow the same rules — a dead guarded definition is
    still dead. *)

open Vliw_ir

let has_side_effect op =
  match Op.kind op with
  | Op.Store _ | Op.Out _ | Op.Call _ | Op.Alloc _ -> true
  | Op.In _ -> false (* pure read of the input vector *)
  | _ -> Op.is_terminator op

let dce_func (f : Func.t) : Func.t =
  (* fixpoint: needed registers *)
  let needed : (Reg.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref true in
  let note r =
    if not (Hashtbl.mem needed r) then begin
      Hashtbl.replace needed r ();
      changed := true
    end
  in
  let keep op =
    has_side_effect op
    || List.exists (fun r -> Hashtbl.mem needed r) (Op.defs op)
  in
  while !changed do
    changed := false;
    Func.iter_ops
      (fun op -> if keep op then List.iter note (Op.uses op))
      f
  done;
  Func.map_blocks
    (fun b ->
      Block.v ~label:(Block.label b)
        ~body:(List.filter keep (Block.body b))
        ~term:(Block.term b))
    f

let run (prog : Prog.t) : Prog.t =
  let p =
    Prog.v
      ~globals:(Prog.globals prog)
      ~funcs:(List.map dce_func (Prog.funcs prog))
      ~op_count:(Prog.op_count prog)
  in
  (try Validate.check p
   with Validate.Invalid m ->
     invalid_arg ("Dce.run produced invalid IR: " ^ m));
  p
