lib/opt/ifconvert.mli: Prog Vliw_ir
