lib/opt/straighten.ml: Block Func Label List Op Option Prog Vliw_ir
