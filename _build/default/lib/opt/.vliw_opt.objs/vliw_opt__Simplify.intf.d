lib/opt/simplify.mli: Prog Vliw_ir
