lib/opt/ifconvert.ml: Block Func Label List Op Option Prog Reg Straighten Validate Vliw_ir
