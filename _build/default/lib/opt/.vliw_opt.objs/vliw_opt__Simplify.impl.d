lib/opt/simplify.ml: Block Fmt Func Hashtbl List Op Option Prog Reg Validate Vliw_ir
