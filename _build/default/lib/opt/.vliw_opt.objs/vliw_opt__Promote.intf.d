lib/opt/promote.mli: Prog Vliw_ir
