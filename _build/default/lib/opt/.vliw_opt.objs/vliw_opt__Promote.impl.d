lib/opt/promote.ml: Block Data Func Hashtbl Label List Op Option Prog Reg String Validate Vliw_ir
