lib/opt/straighten.mli: Func Prog Vliw_ir
