lib/opt/dce.ml: Block Func Hashtbl List Op Prog Reg Validate Vliw_ir
