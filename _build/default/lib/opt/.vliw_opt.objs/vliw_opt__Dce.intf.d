lib/opt/dce.mli: Prog Vliw_ir
