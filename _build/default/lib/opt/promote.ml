(** Register promotion of global scalars.

    The MiniC lowering materializes every access to a global scalar as an
    address + load/store pair, which threads kernel recurrences (like the
    ADPCM predictor state) through the memory unit and serializes them on
    the scalar's home cluster.  The paper's compiler (IMPACT) promotes
    such scalars to registers; this pass replays that: a global scalar
    [g] accessed by exactly one call-free function is loaded into a fresh
    register at function entry, all loads/stores become register copies,
    and the register is written back before every return.

    Must run before if-conversion in principle it also works on guarded
    code: a guarded store becomes a guarded copy with identical
    semantics (no write when nullified). *)

open Vliw_ir

(** Global scalars and the single function allowed to touch them. *)
let promotable (prog : Prog.t) : (string * string) list =
  let accessors : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let direct_only : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      (* address registers produced by Addr, and how they are used *)
      let addr_regs : (Reg.t, string) Hashtbl.t = Hashtbl.create 16 in
      Func.iter_ops
        (fun op ->
          match Op.kind op with
          | Op.Addr { dst; obj } -> Hashtbl.replace addr_regs dst obj
          | _ -> ())
        f;
      let record g =
        let cur = Option.value ~default:[] (Hashtbl.find_opt accessors g) in
        if not (List.mem (Func.name f) cur) then
          Hashtbl.replace accessors g (Func.name f :: cur)
      in
      let mark_indirect g = Hashtbl.replace direct_only g false in
      Func.iter_ops
        (fun op ->
          let check_use operand ~direct_base =
            match operand with
            | Op.Reg r -> (
                match Hashtbl.find_opt addr_regs r with
                | Some g ->
                    record g;
                    if not direct_base then mark_indirect g
                | None -> ())
            | Op.Imm _ | Op.Fimm _ -> ()
          in
          match Op.kind op with
          | Op.Addr _ -> ()
          | Op.Load { base; offset = Op.Imm 0; _ } ->
              check_use base ~direct_base:true
          | Op.Store { src; base; offset = Op.Imm 0 } ->
              check_use base ~direct_base:true;
              check_use src ~direct_base:false
          | _ ->
              (* the address escapes into arbitrary computation *)
              List.iter
                (fun operand -> check_use operand ~direct_base:false)
                (Op.use_operands op))
        f)
    (Prog.funcs prog);
  let scalar g =
    match
      List.find_opt
        (fun (d : Data.global) -> String.equal d.Data.g_name g)
        (Prog.globals prog)
    with
    | Some d -> d.Data.g_elems = 1
    | None -> false
  in
  let call_free fname =
    let f = Prog.find_func prog fname in
    not (Func.fold_ops (fun acc op -> acc || Op.is_call op) false f)
  in
  Hashtbl.fold
    (fun g fns acc ->
      match fns with
      | [ fname ]
        when scalar g
             && Option.value ~default:true (Hashtbl.find_opt direct_only g)
             && call_free fname ->
          (g, fname) :: acc
      | _ -> acc)
    accessors []
  |> List.sort compare

let promote_in_func ~next_op (f : Func.t)
    (globals : string list) : Func.t =
  if globals = [] then f
  else begin
    let next_reg = ref (Func.reg_count f) in
    let fresh_reg () =
      let r = Reg.of_int !next_reg in
      incr next_reg;
      r
    in
    let fresh_op ?guard kind =
      let id = !next_op in
      next_op := id + 1;
      Op.make ?guard ~id kind
    in
    let reg_of_global =
      List.map (fun g -> (g, fresh_reg ())) globals
    in
    (* address registers for the promoted globals *)
    let promoted_addr : (Reg.t, string) Hashtbl.t = Hashtbl.create 16 in
    Func.iter_ops
      (fun op ->
        match Op.kind op with
        | Op.Addr { dst; obj } when List.mem_assoc obj reg_of_global ->
            Hashtbl.replace promoted_addr dst obj
        | _ -> ())
      f;
    let rewrite_op (op : Op.t) : Op.t list =
      let guard = Op.guard op in
      match Op.kind op with
      | Op.Addr { dst; _ } when Hashtbl.mem promoted_addr dst ->
          (* keep the address materialization: entry/exit accesses use it;
             dead ones cost one int slot, matching a conservative compiler *)
          [ op ]
      | Op.Load { dst; base = Op.Reg r; offset = Op.Imm 0 }
        when Hashtbl.mem promoted_addr r ->
          let g = Hashtbl.find promoted_addr r in
          [
            Op.make ?guard ~id:(Op.id op)
              (Op.Un (Op.Copy, dst, Op.Reg (List.assoc g reg_of_global)));
          ]
      | Op.Store { src; base = Op.Reg r; offset = Op.Imm 0 }
        when Hashtbl.mem promoted_addr r ->
          let g = Hashtbl.find promoted_addr r in
          [
            Op.make ?guard ~id:(Op.id op)
              (Op.Un (Op.Copy, List.assoc g reg_of_global, src));
          ]
      | _ -> [ op ]
    in
    let entry_label = Block.label (Func.entry f) in
    let blocks =
      List.map
        (fun b ->
          let body = List.concat_map rewrite_op (Block.body b) in
          (* entry: load every promoted global once *)
          let body =
            if Label.equal (Block.label b) entry_label then
              List.concat_map
                (fun (g, rg) ->
                  let a = fresh_reg () in
                  [
                    fresh_op (Op.Addr { dst = a; obj = g });
                    fresh_op
                      (Op.Load { dst = rg; base = Op.Reg a; offset = Op.Imm 0 });
                  ])
                reg_of_global
              @ body
            else body
          in
          (* returns: write every promoted global back *)
          match Op.kind (Block.term b) with
          | Op.Ret _ ->
              let writeback =
                List.concat_map
                  (fun (g, rg) ->
                    let a = fresh_reg () in
                    [
                      fresh_op (Op.Addr { dst = a; obj = g });
                      fresh_op
                        (Op.Store
                           { src = Op.Reg rg; base = Op.Reg a; offset = Op.Imm 0 });
                    ])
                  reg_of_global
              in
              Block.v ~label:(Block.label b) ~body:(body @ writeback)
                ~term:(Block.term b)
          | _ -> Block.v ~label:(Block.label b) ~body ~term:(Block.term b))
        (Func.blocks f)
    in
    Func.v ~name:(Func.name f) ~params:(Func.params f) ~blocks
      ~reg_count:!next_reg
  end

(** Promote all eligible global scalars. *)
let run (prog : Prog.t) : Prog.t =
  let pairs = promotable prog in
  let next_op = ref (Prog.op_count prog) in
  let funcs =
    List.map
      (fun f ->
        let mine =
          List.filter_map
            (fun (g, fname) ->
              if String.equal fname (Func.name f) then Some g else None)
            pairs
        in
        promote_in_func ~next_op f mine)
      (Prog.funcs prog)
  in
  let p = Prog.v ~globals:(Prog.globals prog) ~funcs ~op_count:!next_op in
  (try Validate.check p
   with Validate.Invalid m ->
     invalid_arg ("Promote.run produced invalid IR: " ^ m));
  p
