(** Control-flow straightening: merge a block ending in an unconditional
    jump with its sole-predecessor target. *)

open Vliw_ir

val merge_func : ?max_ops:int -> Func.t -> Func.t
val run : ?max_ops:int -> Prog.t -> Prog.t
