(** Scalar simplifications: constant folding and copy propagation.

    The MiniC lowering produces many single-definition temporaries and
    variable copies; folding and propagating them shortens dependence
    chains the way a production front end (the paper's IMPACT) would
    before partitioning runs.

    Both transformations are deliberately conservative in the non-SSA IR:

    - constant folding rewrites an operation whose operands are literals
      into a copy of the result (division/remainder by zero is left
      alone — it must still trap at run time);
    - copy propagation only replaces uses of registers with exactly one,
      unguarded definition [d = copy s] where [s] is a literal or a
      register that itself has exactly one unguarded definition (such
      values never change, so any use seeing [d] may read [s] instead). *)

open Vliw_ir

let fold_ibin (o : Op.ibinop) a b : int option =
  let bool_ c = Some (if c then 1 else 0) in
  match o with
  | Op.Add -> Some (a + b)
  | Op.Sub -> Some (a - b)
  | Op.Mul -> Some (a * b)
  | Op.Div -> if b = 0 then None else Some (a / b)
  | Op.Rem -> if b = 0 then None else Some (a mod b)
  | Op.And -> Some (a land b)
  | Op.Or -> Some (a lor b)
  | Op.Xor -> Some (a lxor b)
  | Op.Shl -> if b < 0 || b > 62 then None else Some (a lsl b)
  | Op.Shr -> if b < 0 || b > 62 then None else Some (a asr b)
  | Op.Icmp Op.Ceq -> bool_ (a = b)
  | Op.Icmp Op.Cne -> bool_ (a <> b)
  | Op.Icmp Op.Clt -> bool_ (a < b)
  | Op.Icmp Op.Cle -> bool_ (a <= b)
  | Op.Icmp Op.Cgt -> bool_ (a > b)
  | Op.Icmp Op.Cge -> bool_ (a >= b)

let fold_op (op : Op.t) : Op.t =
  match Op.kind op with
  | Op.Ibin (o, d, Op.Imm a, Op.Imm b) -> (
      match fold_ibin o a b with
      | Some v -> Op.make ?guard:(Op.guard op) ~id:(Op.id op) (Op.Un (Op.Copy, d, Op.Imm v))
      | None -> op)
  | Op.Un (Op.Neg, d, Op.Imm a) ->
      Op.make ?guard:(Op.guard op) ~id:(Op.id op) (Op.Un (Op.Copy, d, Op.Imm (-a)))
  | Op.Un (Op.Not, d, Op.Imm a) ->
      Op.make ?guard:(Op.guard op) ~id:(Op.id op)
        (Op.Un (Op.Copy, d, Op.Imm (if a = 0 then 1 else 0)))
  | _ -> op

(* ------------------------------------------------------------------ *)

(** Number of definitions of each register in [f] (guarded defs count
    twice so they are never treated as single definitions). *)
let def_counts (f : Func.t) : (Reg.t, int) Hashtbl.t =
  let counts = Hashtbl.create 64 in
  let bump r n =
    Hashtbl.replace counts r (n + Option.value ~default:0 (Hashtbl.find_opt counts r))
  in
  List.iter (fun p -> bump p 1) (Func.params f);
  Func.iter_ops
    (fun op ->
      let n = if Op.is_guarded op then 2 else 1 in
      List.iter (fun r -> bump r n) (Op.defs op))
    f;
  counts

let simplify_func (f : Func.t) : Func.t =
  (* pass 1: fold constants *)
  let f = Func.map_blocks (fun b ->
      Block.v ~label:(Block.label b)
        ~body:(List.map fold_op (Block.body b))
        ~term:(Block.term b))
      f
  in
  (* pass 2: find propagatable copies *)
  let counts = def_counts f in
  let single r = Hashtbl.find_opt counts r = Some 1 in
  let replacement : (Reg.t, Op.operand) Hashtbl.t = Hashtbl.create 32 in
  Func.iter_ops
    (fun op ->
      match (Op.kind op, Op.guard op) with
      | Op.Un (Op.Copy, d, src), None when single d -> (
          match src with
          | Op.Imm _ | Op.Fimm _ -> Hashtbl.replace replacement d src
          | Op.Reg s when single s -> Hashtbl.replace replacement d src
          | Op.Reg _ -> ())
      | _ -> ())
    f;
  (* resolve chains d -> s -> imm *)
  let rec resolve operand depth =
    if depth > 8 then operand
    else
      match operand with
      | Op.Reg r -> (
          match Hashtbl.find_opt replacement r with
          | Some next -> resolve next (depth + 1)
          | None -> operand)
      | _ -> operand
  in
  let rw operand = resolve operand 0 in
  let rwr r = match rw (Op.Reg r) with Op.Reg r' -> r' | _ -> r in
  let rewrite op =
    let kind =
      match Op.kind op with
      | Op.Ibin (o, d, a, b) -> Op.Ibin (o, d, rw a, rw b)
      | Op.Fbin (o, d, a, b) -> Op.Fbin (o, d, rw a, rw b)
      | Op.Un (o, d, a) -> Op.Un (o, d, rw a)
      | Op.Load { dst; base; offset } ->
          Op.Load { dst; base = rw base; offset = rw offset }
      | Op.Store { src; base; offset } ->
          Op.Store { src = rw src; base = rw base; offset = rw offset }
      | Op.Addr _ as k -> k
      | Op.Alloc { dst; size; site } -> Op.Alloc { dst; size = rw size; site }
      | Op.Call { dst; callee; args } ->
          Op.Call { dst; callee; args = List.map rw args }
      | Op.In { dst; index } -> Op.In { dst; index = rw index }
      | Op.Out a -> Op.Out (rw a)
      | Op.Cbr { cond; if_true; if_false } ->
          Op.Cbr { cond = rw cond; if_true; if_false }
      | (Op.Jmp _ | Op.Ret None) as k -> k
      | Op.Ret (Some a) -> Op.Ret (Some (rw a))
      | Op.Move { dst; src } -> Op.Move { dst; src = rwr src }
    in
    let guard =
      Option.map
        (fun { Op.greg; gsense } -> { Op.greg = rwr greg; gsense })
        (Op.guard op)
    in
    Op.make ?guard ~id:(Op.id op) kind
  in
  Func.map_blocks
    (fun b ->
      Block.v ~label:(Block.label b)
        ~body:(List.map rewrite (Block.body b))
        ~term:(rewrite (Block.term b)))
    f

(** Iterate folding + propagation to a fixpoint (bounded). *)
let run (prog : Prog.t) : Prog.t =
  let step p =
    Prog.v
      ~globals:(Prog.globals p)
      ~funcs:(List.map simplify_func (Prog.funcs p))
      ~op_count:(Prog.op_count p)
  in
  let rec go p n =
    if n = 0 then p
    else
      let p' = step p in
      (* cheap convergence check: compare printed sizes *)
      if Fmt.str "%a" Prog.pp p' = Fmt.str "%a" Prog.pp p then p'
      else go p' (n - 1)
  in
  let p = go prog 4 in
  (try Validate.check p
   with Validate.Invalid m ->
     invalid_arg ("Simplify.run produced invalid IR: " ^ m));
  p
