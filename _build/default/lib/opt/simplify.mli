(** Constant folding and conservative copy propagation (single,
    unguarded definitions only), iterated to a bounded fixpoint.
    Division/remainder by a zero literal is never folded away — it must
    still trap. *)

open Vliw_ir

val run : Prog.t -> Prog.t
