(** Control-flow straightening: merge a block ending in an unconditional
    jump with its target when the target has no other predecessors.
    Grows the hyperblocks formed by [Ifconvert] and cleans up the join
    blocks the MiniC lowering creates. *)

open Vliw_ir

(** Merge once; [None] at fixpoint. *)
let merge_one ~max_ops (f : Func.t) : Func.t option =
  let preds = Func.predecessor_map f in
  let entry_label = Block.label (Func.entry f) in
  let rec scan = function
    | [] -> None
    | (a : Block.t) :: rest -> (
        match Op.kind (Block.term a) with
        | Op.Jmp target
          when (not (Label.equal target (Block.label a)))
               && (not (Label.equal target entry_label))
               && List.length
                    (Option.value ~default:[]
                       (Label.Map.find_opt target preds))
                  = 1 ->
            let b = Func.find_block f target in
            if Block.num_ops a + Block.num_ops b - 1 > max_ops then scan rest
            else begin
              let merged =
                Block.v ~label:(Block.label a)
                  ~body:(Block.body a @ Block.body b)
                  ~term:(Block.term b)
              in
              let blocks =
                List.filter_map
                  (fun blk ->
                    if Label.equal (Block.label blk) (Block.label a) then
                      Some merged
                    else if Label.equal (Block.label blk) target then None
                    else Some blk)
                  (Func.blocks f)
              in
              Some (Func.with_blocks f blocks)
            end
        | _ -> scan rest)
  in
  scan (Func.blocks f)

let rec merge_func ?(max_ops = max_int) (f : Func.t) : Func.t =
  match merge_one ~max_ops f with
  | Some f' -> merge_func ~max_ops f'
  | None -> f

let run ?max_ops (prog : Prog.t) : Prog.t =
  Prog.v
    ~globals:(Prog.globals prog)
    ~funcs:(List.map (merge_func ?max_ops) (Prog.funcs prog))
    ~op_count:(Prog.op_count prog)
