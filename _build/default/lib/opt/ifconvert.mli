(** If-conversion: predicated hyperblock formation (the Trimaran/IMPACT
    region-formation substrate).  Flattens call-free diamonds and
    triangles into straight-line guarded code, interleaved with
    straightening, to a fixpoint bounded by [max_block_ops].  Semantics
    are preserved (checked by the property tests). *)

open Vliw_ir

type config = {
  max_block_ops : int;  (** do not grow hyperblocks beyond this *)
  max_branch_ops : int;  (** max ops convertible per branch side *)
}

val default_config : config
val run : ?config:config -> Prog.t -> Prog.t
