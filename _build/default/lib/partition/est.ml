(** Schedule-length estimation for RHOP (paper Section 3.4).

    RHOP's defining feature is steering cluster assignment with cheap
    schedule estimates instead of running the scheduler.  For a candidate
    cluster assignment of one block the estimate combines:

    - a resource bound: per cluster, ops of each FU kind divided by the
      unit count, and intercluster moves divided by bus bandwidth;
    - a dependence bound: the critical path where every cut register-flow
      edge is stretched by the move latency;
    - a cross-block term: uses of values homed on another cluster (and
      loop-carried couplings) will force a move in the producer block;
      they are charged [xmove_weight] cycles each, additively.

    The final cost is lexicographic-ish: [100 * (bound + xmove term) +
    in-block move count] so move count breaks ties. *)

module M = Vliw_machine
module D = Vliw_sched.Deps

type t = {
  machine : M.t;
  deps : D.t;
  n : int;
  fu_of : int array;  (** FU kind index per node *)
  lat : int array;
  is_flow : (int * int, unit) Hashtbl.t;
  pins : (int * int) list;  (** (node, home cluster of a live-in value) *)
  couplings : (int * int) list;
      (** (use node, def node) for loop-carried same-register pairs *)
  drains : bool array;
      (** nodes defining a live-out value pay their full latency in the
          block's length (live-out drain, like [List_sched]) *)
  xmove_weight : int;
}

let make ~machine ~deps ~pins ~couplings ~live_out ~xmove_weight =
  let n = D.num_ops deps in
  let fu_of =
    Array.init n (fun i -> M.fu_kind_index (Vliw_ir.Op.fu_kind (D.op deps i)))
  in
  let lat = Array.init n (D.op_latency deps) in
  let is_flow = Hashtbl.create (2 * n) in
  List.iter (fun (d, u, _) -> Hashtbl.replace is_flow (d, u) ()) (D.flow_edges deps);
  let drains =
    Array.init n (fun i ->
        List.exists
          (fun r -> Vliw_ir.Reg.Set.mem r live_out)
          (Vliw_ir.Op.defs (D.op deps i)))
  in
  { machine; deps; n; fu_of; lat; is_flow; pins; couplings; drains; xmove_weight }

(** In-block intercluster moves implied by [cluster]: one per unique
    (producer, consumer cluster) pair over cut flow edges. *)
let count_moves t (cluster : int array) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (d, u, _) ->
      if cluster.(d) <> cluster.(u) then
        Hashtbl.replace seen (d, cluster.(u)) ())
    (D.flow_edges t.deps);
  Hashtbl.length seen

let cost t (cluster : int array) : int =
  let nclusters = M.num_clusters t.machine in
  (* resource bound *)
  let usage = Array.make_matrix nclusters M.fu_kind_count 0 in
  for i = 0 to t.n - 1 do
    let c = cluster.(i) in
    usage.(c).(t.fu_of.(i)) <- usage.(c).(t.fu_of.(i)) + 1
  done;
  let res = ref 0 in
  (* [graded]: per-FU-kind worst-cluster pressure, summed.  Unlike the
     max bound it decreases a little with every op moved off the binding
     cluster, giving hill-climbing refinement a gradient across the
     plateaus of the max. *)
  let graded = ref 0 in
  for c = 0 to nclusters - 1 do
    List.iter
      (fun k ->
        let cap = M.fu_count (M.cluster_of t.machine c) k in
        let u = usage.(c).(M.fu_kind_index k) in
        if u > 0 then
          res := max !res (if cap = 0 then 1_000_000 else (u + cap - 1) / cap))
      M.all_fu_kinds
  done;
  List.iter
    (fun k ->
      let worst = ref 0 in
      for c = 0 to nclusters - 1 do
        let cap = M.fu_count (M.cluster_of t.machine c) k in
        let u = usage.(c).(M.fu_kind_index k) in
        if u > 0 then
          worst :=
            max !worst (if cap = 0 then 1_000_000 else (u + cap - 1) / cap)
      done;
      graded := !graded + !worst)
    M.all_fu_kinds;
  let moves = count_moves t cluster in
  let bus = (moves + M.moves_per_cycle t.machine - 1) / M.moves_per_cycle t.machine in
  (* dependence bound with stretched cut edges *)
  let ml = M.move_latency t.machine in
  let level = Array.make t.n 0 in
  let dep = ref 0 in
  for i = 0 to t.n - 1 do
    List.iter
      (fun (p, lat) ->
        let eff =
          if Hashtbl.mem t.is_flow (p, i) && cluster.(p) <> cluster.(i) then
            lat + ml
          else lat
        in
        level.(i) <- max level.(i) (level.(p) + eff))
      (D.preds t.deps i);
    (* issue bound for everyone; full-latency drain for live-out defs *)
    dep := max !dep (level.(i) + if t.drains.(i) then t.lat.(i) else 1)
  done;
  (* cross-block move pressure *)
  let xmoves = ref 0 in
  List.iter
    (fun (node, home) -> if cluster.(node) <> home then incr xmoves)
    t.pins;
  List.iter
    (fun (u, d) -> if cluster.(u) <> cluster.(d) then incr xmoves)
    t.couplings;
  let bound = max !res (max bus !dep) in
  (10_000 * (bound + (t.xmove_weight * !xmoves)))
  + (100 * (!graded + bus))
  + moves
