(** Access-pattern merging (paper Section 3.3.1).

    Builds the merged object/operation groups that all object
    partitioners work on:

    - when a single memory operation can access several data objects,
      those objects are merged (placing them apart would force network
      transfers no matter what);
    - when several memory operations access one data object, the
      operations are merged (and transitively any other objects they
      touch).

    The result is a partition of {objects} u {memory-touching ops} into
    groups: a group is the atomic unit of data placement.  [Alloc]
    operations count as memory-touching (a malloc call site belongs with
    its heap object).

    The optional slack-based merging the paper evaluated and rejected
    (merging low-slack dependent operations) is available behind
    [~merge_low_slack] for the ablation bench. *)

open Vliw_ir
module An = Vliw_analysis

type group = {
  id : int;
  objects : Data.obj list;
  mem_ops : int list;  (** op ids *)
  bytes : int;  (** total data size of the group's objects *)
}

type t = {
  groups : group array;
  group_of_obj : (Data.obj, int) Hashtbl.t;
  group_of_op : (int, int) Hashtbl.t;  (** only memory-touching ops *)
}

let compute ?(merge_low_slack = false) ?(machine : Vliw_machine.t option)
    (prog : Prog.t) (objtab : Data.table) (pt : An.Points_to.t) : t =
  let nobj = Data.table_length objtab in
  (* element layout: objects [0, nobj), then one slot per memory op *)
  let mem_ops =
    Prog.fold_ops
      (fun acc op -> if Op.touches_object op then Op.id op :: acc else acc)
      [] prog
    |> List.rev
  in
  let op_slot = Hashtbl.create 64 in
  List.iteri (fun i op_id -> Hashtbl.replace op_slot op_id (nobj + i)) mem_ops;
  let uf = Union_find.create (nobj + List.length mem_ops) in
  List.iter
    (fun op_id ->
      let slot = Hashtbl.find op_slot op_id in
      Data.Obj_set.iter
        (fun obj ->
          if Data.mem_obj objtab obj then
            Union_find.union uf slot (Data.id_of_obj objtab obj))
        (An.Points_to.objects_of pt op_id))
    mem_ops;
  (* optional: merge dependent low-slack memory operations (the variant
     the paper found counterproductive, Section 3.3.1) *)
  if merge_low_slack then begin
    let machine =
      match machine with
      | Some m -> m
      | None -> invalid_arg "Merge.compute: merge_low_slack needs ~machine"
    in
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            let deps =
              Vliw_sched.Deps.build
                ~objects_of:(An.Points_to.objects_of pt)
                ~machine b
            in
            let times = Vliw_sched.Deps.asap_alap deps in
            List.iter
              (fun (d, u, _r) ->
                let slack =
                  let _, alap_u = times.(u) in
                  let asap_d, _ = times.(d) in
                  alap_u - asap_d - Vliw_sched.Deps.op_latency deps d
                in
                let od = Vliw_sched.Deps.op deps d
                and ou = Vliw_sched.Deps.op deps u in
                if
                  slack <= 1 && Op.touches_object od && Op.touches_object ou
                then
                  Union_find.union uf
                    (Hashtbl.find op_slot (Op.id od))
                    (Hashtbl.find op_slot (Op.id ou)))
              (Vliw_sched.Deps.flow_edges deps))
          (Func.blocks f))
      (Prog.funcs prog)
  end;
  let gid, ngroups = Union_find.groups uf in
  let objects = Array.make ngroups [] in
  let ops = Array.make ngroups [] in
  let bytes = Array.make ngroups 0 in
  for i = nobj - 1 downto 0 do
    let g = gid.(i) in
    objects.(g) <- Data.obj_of_id objtab i :: objects.(g);
    bytes.(g) <- bytes.(g) + Data.size_of_id objtab i
  done;
  List.iter
    (fun op_id ->
      let g = gid.(Hashtbl.find op_slot op_id) in
      ops.(g) <- op_id :: ops.(g))
    (List.rev mem_ops);
  let groups =
    Array.init ngroups (fun id ->
        { id; objects = objects.(id); mem_ops = List.rev ops.(id); bytes = bytes.(id) })
  in
  let group_of_obj = Hashtbl.create (2 * nobj) in
  let group_of_op = Hashtbl.create 64 in
  Array.iter
    (fun g ->
      List.iter (fun o -> Hashtbl.replace group_of_obj o g.id) g.objects;
      List.iter (fun op -> Hashtbl.replace group_of_op op g.id) g.mem_ops)
    groups;
  { groups; group_of_obj; group_of_op }

let num_groups t = Array.length t.groups
let group t i = t.groups.(i)

(** Groups that actually contain data (a group can be ops-only when the
    points-to set of an op was empty). *)
let data_groups t =
  Array.to_list t.groups |> List.filter (fun g -> g.objects <> [])

let group_of_obj t obj = Hashtbl.find_opt t.group_of_obj obj
let group_of_op t op_id = Hashtbl.find_opt t.group_of_op op_id

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iter
    (fun g ->
      Fmt.pf ppf "group %d: %d B, objects [%a], %d mem ops@," g.id g.bytes
        Fmt.(list ~sep:comma Data.pp_obj)
        g.objects (List.length g.mem_ops))
    t.groups;
  Fmt.pf ppf "@]"
