lib/partition/gdp.ml: Array Data Float Graphpart Hashtbl List Merge Op Prog Vliw_analysis Vliw_interp Vliw_ir Vliw_machine
