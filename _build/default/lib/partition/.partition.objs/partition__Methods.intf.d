lib/partition/methods.mli: Data Gdp Merge Prog Rhop Vliw_analysis Vliw_interp Vliw_ir Vliw_machine Vliw_sched
