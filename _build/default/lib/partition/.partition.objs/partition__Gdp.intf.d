lib/partition/gdp.mli: Data Hashtbl Merge Prog Vliw_analysis Vliw_interp Vliw_ir Vliw_machine
