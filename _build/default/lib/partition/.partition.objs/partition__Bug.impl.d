lib/partition/bug.ml: Array Block Data Func Hashtbl List Op Prog Reg Vliw_ir Vliw_machine Vliw_sched
