lib/partition/union_find.mli:
