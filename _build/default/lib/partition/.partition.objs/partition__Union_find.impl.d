lib/partition/union_find.ml: Array Fun
