lib/partition/est.mli: Vliw_ir Vliw_machine Vliw_sched
