lib/partition/rhop.ml: Array Block Data Est Fun Func Hashtbl List Op Option Prog Reg Union_find Vliw_analysis Vliw_ir Vliw_machine Vliw_sched
