lib/partition/methods.ml: Baselines Data Func Gdp Hashtbl Int List Merge Op Option Prog Reg Rhop Vliw_analysis Vliw_interp Vliw_ir Vliw_machine Vliw_sched
