lib/partition/baselines.ml: Array Data List Merge Vliw_interp Vliw_ir Vliw_sched
