lib/partition/baselines.mli: Data Merge Vliw_interp Vliw_ir Vliw_sched
