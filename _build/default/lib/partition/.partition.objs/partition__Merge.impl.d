lib/partition/merge.ml: Array Data Fmt Func Hashtbl List Op Prog Union_find Vliw_analysis Vliw_ir Vliw_machine Vliw_sched
