lib/partition/bug.mli: Data Prog Vliw_ir Vliw_machine Vliw_sched
