lib/partition/est.ml: Array Hashtbl List Vliw_ir Vliw_machine Vliw_sched
