lib/partition/merge.mli: Data Fmt Hashtbl Prog Vliw_analysis Vliw_ir Vliw_machine
