(** The comparison object partitioners (paper Section 4.1, Table 1):
    Profile Max (greedy by dynamic frequency with a memory-balance
    threshold) and Naive (max-frequency placement, no balance). *)

open Vliw_ir

(** Per merge group: dynamic access frequency per cluster under an
    existing computation assignment. *)
val group_frequencies :
  merge:Merge.t ->
  profile:Vliw_interp.Profile.t ->
  assign:Vliw_sched.Assignment.t ->
  num_clusters:int ->
  (int * int array) list

val profile_max_homes :
  ?balance_tol:float ->
  merge:Merge.t ->
  profile:Vliw_interp.Profile.t ->
  assign:Vliw_sched.Assignment.t ->
  num_clusters:int ->
  unit ->
  (Data.obj * int) list

val naive_homes :
  merge:Merge.t ->
  profile:Vliw_interp.Profile.t ->
  assign:Vliw_sched.Assignment.t ->
  num_clusters:int ->
  unit ->
  (Data.obj * int) list
