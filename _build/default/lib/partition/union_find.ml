(** Union-find with path compression and union by rank, over dense int
    keys.  Used by the access-pattern merging passes. *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end

let same t a b = find t a = find t b

(** Dense group ids: returns (group id per element, number of groups). *)
let groups t =
  let n = Array.length t.parent in
  let gid = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let r = find t i in
    if gid.(r) = -1 then begin
      gid.(r) <- !next;
      incr next
    end;
    gid.(i) <- gid.(r)
  done;
  (gid, !next)
