(** Union-find with path compression and union by rank over dense int
    keys. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

(** Dense group ids: (group id per element, number of groups). *)
val groups : t -> int array * int
