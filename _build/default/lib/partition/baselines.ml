(** The comparison object partitioners (paper Section 4.1, Table 1).

    - {b Profile Max}: run the detailed computation partitioner once
      assuming a unified memory, record where each merged object group's
      accesses landed, then greedily place groups — highest dynamic
      frequency first — on their preferred cluster, spilling to the other
      cluster when a memory-balance threshold is exceeded.  A second
      RHOP pass then partitions computation with the objects locked.

    - {b Naive}: same unified-memory run, then place every group on the
      cluster with the most dynamic accesses with {e no} balance and
      {e no} repartitioning: memory operations are simply re-homed and
      move insertion patches up the traffic (the Figure 2 experiment). *)

open Vliw_ir
module A = Vliw_sched.Assignment
module P = Vliw_interp.Profile

(** Dynamic access frequency of each merge group per cluster under an
    existing computation assignment. *)
let group_frequencies ~(merge : Merge.t) ~(profile : P.t) ~(assign : A.t)
    ~num_clusters : (int * int array) list =
  List.map
    (fun (g : Merge.group) ->
      let freq = Array.make num_clusters 0 in
      List.iter
        (fun op_id ->
          match A.cluster_of_opt assign ~op_id with
          | Some c -> freq.(c) <- freq.(c) + P.op_count profile ~op_id
          | None -> ())
        g.Merge.mem_ops;
      (g.Merge.id, freq))
    (Array.to_list merge.Merge.groups)

let preferred freq =
  let best = ref 0 in
  Array.iteri (fun c n -> if n > freq.(!best) then best := c) freq;
  !best

(** Profile Max object placement: greedy by descending total frequency
    with a memory-balance threshold of [(1 + balance_tol) / nclusters]
    of the total data bytes per cluster. *)
let profile_max_homes ?(balance_tol = 0.25) ~(merge : Merge.t)
    ~(profile : P.t) ~(assign : A.t) ~num_clusters () :
    (Data.obj * int) list =
  let freqs = group_frequencies ~merge ~profile ~assign ~num_clusters in
  let total_bytes =
    Array.fold_left (fun acc g -> acc + g.Merge.bytes) 0 merge.Merge.groups
  in
  let cap =
    int_of_float
      (ceil
         ((1. +. balance_tol) /. float num_clusters *. float total_bytes))
  in
  let by_freq =
    List.sort
      (fun (_, fa) (_, fb) ->
        compare (Array.fold_left ( + ) 0 fb) (Array.fold_left ( + ) 0 fa))
      freqs
  in
  let used = Array.make num_clusters 0 in
  List.concat_map
    (fun (gid, freq) ->
      let g = Merge.group merge gid in
      let pref = preferred freq in
      let fits c = used.(c) + g.Merge.bytes <= cap in
      let chosen =
        if fits pref then pref
        else begin
          (* spill to the least-loaded cluster that fits, else least-loaded *)
          let best = ref 0 in
          for c = 1 to num_clusters - 1 do
            if used.(c) < used.(!best) then best := c
          done;
          let candidate = ref !best in
          for c = 0 to num_clusters - 1 do
            if fits c && (not (fits !candidate) || freq.(c) > freq.(!candidate))
            then candidate := c
          done;
          !candidate
        end
      in
      used.(chosen) <- used.(chosen) + g.Merge.bytes;
      List.map (fun o -> (o, chosen)) g.Merge.objects)
    by_freq

(** Naive object placement: every group on its most-accessed cluster,
    balance ignored. *)
let naive_homes ~(merge : Merge.t) ~(profile : P.t) ~(assign : A.t)
    ~num_clusters () : (Data.obj * int) list =
  let freqs = group_frequencies ~merge ~profile ~assign ~num_clusters in
  List.concat_map
    (fun (gid, freq) ->
      let g = Merge.group merge gid in
      List.map (fun o -> (o, preferred freq)) g.Merge.objects)
    freqs
