(** Access-pattern merging (paper Section 3.3.1): partitions
    {objects} u {memory-touching ops} into groups — a group is the
    atomic unit of data placement.  Objects reachable from one operation
    merge; operations sharing an object merge (transitively). *)

open Vliw_ir

type group = {
  id : int;
  objects : Data.obj list;
  mem_ops : int list;  (** op ids *)
  bytes : int;
}

type t = {
  groups : group array;
  group_of_obj : (Data.obj, int) Hashtbl.t;
  group_of_op : (int, int) Hashtbl.t;
}

(** [merge_low_slack] additionally merges dependent low-slack memory
    operations — the variant the paper evaluated and rejected; it
    requires [~machine]. *)
val compute :
  ?merge_low_slack:bool ->
  ?machine:Vliw_machine.t ->
  Prog.t ->
  Data.table ->
  Vliw_analysis.Points_to.t ->
  t

val num_groups : t -> int
val group : t -> int -> group

(** Groups that contain data objects. *)
val data_groups : t -> group list

val group_of_obj : t -> Data.obj -> int option
val group_of_op : t -> int -> int option
val pp : t Fmt.t
