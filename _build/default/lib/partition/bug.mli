(** Bottom-Up Greedy (BUG) computation partitioning (Ellis'85, the
    Bulldog compiler) — the greedy baseline lineage the paper cites.
    Drop-in replacement for [Rhop.partition] used by the `ablate-bug`
    experiment. *)

open Vliw_ir

val partition :
  machine:Vliw_machine.t ->
  objects_of:(int -> Data.Obj_set.t) ->
  lock_of:(int -> int option) ->
  Prog.t ->
  Vliw_sched.Assignment.t ->
  unit
