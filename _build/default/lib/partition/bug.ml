(** Bottom-Up Greedy (BUG) computation partitioning.

    The first clustering algorithm, from the Bulldog compiler (Ellis,
    1985), cited by the paper as the baseline lineage of all cluster
    assignment work.  This is a practical per-block rendition: operations
    are visited in dependence (topological) order and greedily assigned
    to the cluster that minimizes their estimated issue time given

    - where their operands live (a foreign operand costs the move
      latency),
    - how busy each cluster's function units already are,
    - where values produced in earlier blocks live (pins), and
    - any mandatory placement (memory operations under a data partition,
      register webs homed by earlier blocks).

    It shares RHOP's interface so the experiment harness can swap the
    computation partitioner under any object partitioner — the
    `ablate-bug` bench target compares the two, reproducing the paper's
    implicit claim that region-level RHOP beats greedy assignment. *)

open Vliw_ir
module D = Vliw_sched.Deps
module A = Vliw_sched.Assignment

let partition_block ~(machine : Vliw_machine.t) ~objects_of
    ~(lock_of : int -> int option) ~(reg_home : (Reg.t, int) Hashtbl.t)
    (block : Block.t) : (int * int) list =
  let deps = D.build ~objects_of ~machine block in
  let n = D.num_ops deps in
  let num_clusters = Vliw_machine.num_clusters machine in
  let ml = Vliw_machine.move_latency machine in
  let cluster = Array.make n (-1) in
  (* per-cluster, per-fu-kind usage so far (greedy resource estimate) *)
  let usage = Array.make_matrix num_clusters Vliw_machine.fu_kind_count 0 in
  (* completion estimate per node *)
  let done_at = Array.make n 0 in
  (* same-register webs must agree; first assignment wins *)
  let web_home : (Reg.t, int) Hashtbl.t = Hashtbl.copy reg_home in
  let is_flow = Hashtbl.create (2 * n) in
  List.iter (fun (d, u, _) -> Hashtbl.replace is_flow (d, u) ()) (D.flow_edges deps);
  (* topological order = index order (Deps edges all go forward) *)
  for i = 0 to n - 1 do
    let op = D.op deps i in
    let fu = Vliw_machine.fu_kind_index (Op.fu_kind op) in
    let forced =
      match lock_of (Op.id op) with
      | Some c -> Some c
      | None ->
          List.fold_left
            (fun acc r ->
              match (acc, Hashtbl.find_opt web_home r) with
              | Some c, Some c' when c <> c' ->
                  invalid_arg "Bug: conflicting web homes"
              | Some c, _ -> Some c
              | None, h -> h)
            None (Op.defs op)
    in
    let ready_on c =
      (* operands: local flow producers + cross-block pins *)
      let t = ref 0 in
      List.iter
        (fun (p, lat) ->
          let eff =
            if Hashtbl.mem is_flow (p, i) && cluster.(p) <> c then lat + ml
            else lat
          in
          t := max !t (done_at.(p) - D.op_latency deps p + eff))
        (D.preds deps i);
      List.iter
        (fun r ->
          match Hashtbl.find_opt web_home r with
          | Some h when h <> c ->
              (* a live-in value homed elsewhere must be moved over *)
              t := max !t ml
          | _ -> ())
        (Op.uses op);
      (* resource pressure: each prior same-kind op on c delays by one
         issue slot per unit *)
      let cap =
        max 1
          (Vliw_machine.fu_count
             (Vliw_machine.cluster_of machine c)
             (Op.fu_kind op))
      in
      max !t (usage.(c).(fu) / cap)
    in
    let best =
      match forced with
      | Some c -> c
      | None ->
          let best = ref 0 and best_t = ref max_int in
          for c = 0 to num_clusters - 1 do
            let t = ready_on c in
            if t < !best_t then begin
              best_t := t;
              best := c
            end
          done;
          !best
    in
    cluster.(i) <- best;
    usage.(best).(fu) <- usage.(best).(fu) + 1;
    done_at.(i) <- ready_on best + D.op_latency deps i;
    List.iter (fun r -> Hashtbl.replace web_home r best) (Op.defs op)
  done;
  (* export web homes discovered in this block *)
  Hashtbl.iter (fun r c -> Hashtbl.replace reg_home r c) web_home;
  List.init n (fun i -> (Op.id (D.op deps i), cluster.(i)))

(** Drop-in replacement for [Rhop.partition]. *)
let partition ~(machine : Vliw_machine.t)
    ~(objects_of : int -> Data.Obj_set.t) ~(lock_of : int -> int option)
    (prog : Prog.t) (assign : A.t) : unit =
  List.iter
    (fun f ->
      let reg_home : (Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun b ->
          let result =
            partition_block ~machine ~objects_of ~lock_of ~reg_home b
          in
          List.iter (fun (op_id, c) -> A.set_cluster assign ~op_id c) result)
        (Func.blocks f))
    (Prog.funcs prog)
