(** Region-based Hierarchical Operation Partitioning (RHOP) extended
    with locked memory operations (paper Section 3.4; original from
    PLDI 2003).  Processes each function block by block: pre-merges
    register webs, locks memory operations to their objects' homes and
    registers to earlier-block decisions, then coarsens along low-slack
    flow edges and refines with [Est] schedule estimates. *)

open Vliw_ir

type config = {
  xmove_weight : int option;
      (** cycles charged per cross-block move; default: move latency *)
  coarsen_until : int;
  max_passes : int;
}

val default_config : config

(** Fill in the operation clusters of [assign] for the whole program.
    [lock_of] gives mandatory clusters (memory operations under a data
    partition); object homes in [assign] are the caller's business. *)
val partition :
  ?config:config ->
  machine:Vliw_machine.t ->
  objects_of:(int -> Data.Obj_set.t) ->
  lock_of:(int -> int option) ->
  Prog.t ->
  Vliw_sched.Assignment.t ->
  unit
