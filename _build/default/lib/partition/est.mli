(** Schedule-length estimation for RHOP (paper Section 3.4): resource,
    bus and stretched-critical-path bounds for a candidate cluster
    assignment of one block, plus a graded resource term that gives
    hill-climbing refinement a gradient, and an additive charge for
    cross-block move pressure.  Lower cost is better. *)

type t

val make :
  machine:Vliw_machine.t ->
  deps:Vliw_sched.Deps.t ->
  pins:(int * int) list ->
  couplings:(int * int) list ->
  live_out:Vliw_ir.Reg.Set.t ->
  xmove_weight:int ->
  t

(** In-block intercluster moves implied by the assignment (unique
    (producer, consumer-cluster) pairs over cut flow edges). *)
val count_moves : t -> int array -> int

val cost : t -> int array -> int
