(** Machine-description tests. *)

module M = Vliw_machine

let test_paper_machine () =
  let m = M.paper_machine () in
  Alcotest.(check int) "clusters" 2 (M.num_clusters m);
  Alcotest.(check int) "move latency" 5 (M.move_latency m);
  Alcotest.(check int) "bus bandwidth" 1 (M.moves_per_cycle m);
  Alcotest.(check bool) "homogeneous" true (M.is_homogeneous m);
  let c = M.cluster_of m 0 in
  Alcotest.(check int) "int units" 2 (M.fu_count c M.FU_int);
  Alcotest.(check int) "float units" 1 (M.fu_count c M.FU_float);
  Alcotest.(check int) "memory units" 1 (M.fu_count c M.FU_memory);
  Alcotest.(check int) "branch units" 1 (M.fu_count c M.FU_branch)

let test_latency_variants () =
  List.iter
    (fun lat ->
      let m = M.paper_machine ~move_latency:lat () in
      Alcotest.(check int) "latency" lat (M.move_latency m))
    [ 1; 5; 10 ]

let test_totals () =
  let m = M.paper_machine () in
  Alcotest.(check int) "total ints" 4 (M.total_fu m M.FU_int);
  Alcotest.(check int) "total mems" 2 (M.total_fu m M.FU_memory)

let test_scaled () =
  let m = M.scaled_machine ~clusters:4 () in
  Alcotest.(check int) "clusters" 4 (M.num_clusters m);
  Alcotest.(check bool) "homogeneous" true (M.is_homogeneous m)

let test_invalid () =
  Alcotest.check_raises "no clusters" (Invalid_argument
    "Vliw_machine.v: machine needs at least one cluster") (fun () ->
      ignore
        (M.v ~name:"x" ~clusters:[||]
           ~network:{ M.move_latency = 1; moves_per_cycle = 1 }
           ~latencies:M.itanium_latencies));
  Alcotest.check_raises "bad network" (Invalid_argument
    "Vliw_machine.v: invalid network parameters") (fun () ->
      ignore
        (M.v ~name:"x"
           ~clusters:[| M.cluster ~ints:1 ~floats:0 ~mems:1 ~branches:1 () |]
           ~network:{ M.move_latency = 1; moves_per_cycle = 0 }
           ~latencies:M.itanium_latencies))

let test_itanium_latencies () =
  let l = M.itanium_latencies in
  Alcotest.(check int) "load" 2 l.M.load;
  Alcotest.(check bool) "mul longer than alu" true (l.M.int_mul > l.M.int_alu);
  Alcotest.(check bool) "fdiv longest" true
    (l.M.float_div >= l.M.float_mul && l.M.float_div >= l.M.int_div)

let suite =
  [
    Alcotest.test_case "paper machine shape" `Quick test_paper_machine;
    Alcotest.test_case "latency variants" `Quick test_latency_variants;
    Alcotest.test_case "fu totals" `Quick test_totals;
    Alcotest.test_case "scaled machine" `Quick test_scaled;
    Alcotest.test_case "invalid machines rejected" `Quick test_invalid;
    Alcotest.test_case "itanium-like latencies" `Quick test_itanium_latencies;
  ]
