(** Optimization pass tests: straightening, if-conversion, scalar
    promotion — unit behaviours plus semantic preservation. *)

open Vliw_ir

let diamond_src =
  {|
int g;
void main() {
  int x = in(0);
  if (x > 3) { g = x * 2; } else { g = x - 1; }
  if (x > 0) { out(g + 1); }
  out(g);
}
|}

let count_blocks prog =
  List.fold_left
    (fun acc f -> acc + List.length (Func.blocks f))
    0 (Prog.funcs prog)

let count_guarded prog =
  let n = ref 0 in
  Prog.iter_ops (fun op -> if Op.is_guarded op then incr n) prog;
  !n

let count_cbr prog =
  let n = ref 0 in
  Prog.iter_ops
    (fun op -> match Op.kind op with Op.Cbr _ -> incr n | _ -> ())
    prog;
  !n

let test_ifconvert_flattens_diamonds () =
  let prog = Helpers.compile ~unroll:false diamond_src in
  let conv = Vliw_opt.Ifconvert.run prog in
  Alcotest.(check bool) "fewer blocks" true
    (count_blocks conv < count_blocks prog);
  Alcotest.(check bool) "guards introduced" true (count_guarded conv > 0);
  Alcotest.(check int) "straight line" 0 (count_cbr conv)

let test_ifconvert_preserves_semantics () =
  let prog = Helpers.compile ~unroll:false diamond_src in
  let conv = Vliw_opt.Ifconvert.run prog in
  List.iter
    (fun x ->
      let input = [| x |] in
      Helpers.check_outputs "if-converted"
        (Vliw_interp.Interp.run prog ~input).outputs
        (Vliw_interp.Interp.run conv ~input).outputs)
    [ -5; 0; 1; 4; 100 ]

let test_ifconvert_keeps_loops () =
  let src =
    "void main() { int s = 0; for (int i = 0; i < in(0); i = i + 1) { s = s + i; } out(s); }"
  in
  let prog = Helpers.compile ~unroll:false src in
  let conv = Vliw_opt.Ifconvert.run prog in
  Alcotest.(check bool) "loop branch survives" true (count_cbr conv > 0);
  Helpers.check_outputs "loop semantics"
    (Vliw_interp.Interp.run prog ~input:[| 10 |]).outputs
    (Vliw_interp.Interp.run conv ~input:[| 10 |]).outputs

let test_ifconvert_skips_calls () =
  let src =
    {|
int f(int x) { return x + 1; }
void main() {
  int r = 0;
  if (in(0) > 0) { r = f(3); }
  out(r);
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let conv = Vliw_opt.Ifconvert.run prog in
  (* call-containing branches are not converted *)
  Alcotest.(check bool) "branch remains" true (count_cbr conv > 0);
  List.iter
    (fun x ->
      Helpers.check_outputs "semantics"
        (Vliw_interp.Interp.run prog ~input:[| x |]).outputs
        (Vliw_interp.Interp.run conv ~input:[| x |]).outputs)
    [ 0; 1 ]

let test_nested_if_conversion () =
  let src =
    {|
void main() {
  int x = in(0);
  int r = 0;
  if (x > 0) {
    if (x > 10) { r = 2; } else { r = 1; }
  } else {
    r = -1;
  }
  out(r);
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let conv = Vliw_opt.Ifconvert.run prog in
  Alcotest.(check int) "fully flattened" 0 (count_cbr conv);
  List.iter
    (fun x ->
      Helpers.check_outputs "nested"
        (Vliw_interp.Interp.run prog ~input:[| x |]).outputs
        (Vliw_interp.Interp.run conv ~input:[| x |]).outputs)
    [ -3; 0; 5; 11 ]

let test_straighten () =
  let prog = Helpers.compile ~unroll:false "void main() { out(1); out(2); }" in
  (* lowering of straight-line code may already be one block; straighten
     must at least be idempotent and preserve entry *)
  let s = Vliw_opt.Straighten.run prog in
  let s2 = Vliw_opt.Straighten.run s in
  Alcotest.(check int) "idempotent" (count_blocks s) (count_blocks s2);
  Helpers.check_outputs "semantics"
    (Vliw_interp.Interp.run prog ~input:[||]).outputs
    (Vliw_interp.Interp.run s ~input:[||]).outputs

let test_promote_scalars () =
  let src =
    {|
int acc;
void main() {
  for (int i = 0; i < 10; i = i + 1) { acc = acc + i; }
  out(acc);
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let promoted = Vliw_opt.Promote.run prog in
  (* the loop no longer loads/stores acc every iteration: memory op count
     drops to the entry load + exit store *)
  let count_mem p =
    let n = ref 0 in
    Prog.iter_ops (fun op -> if Op.is_mem op then incr n) p;
    !n
  in
  Alcotest.(check bool) "fewer memory ops" true
    (count_mem promoted < count_mem prog);
  Alcotest.(check int) "load + store remain" 2 (count_mem promoted);
  Helpers.check_outputs "semantics"
    (Vliw_interp.Interp.run prog ~input:[||]).outputs
    (Vliw_interp.Interp.run promoted ~input:[||]).outputs

let test_promote_skips_shared_globals () =
  let src =
    {|
int shared;
int bump(int d) { shared = shared + d; return shared; }
void main() {
  shared = 5;
  out(bump(3));
  out(shared);
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let promoted = Vliw_opt.Promote.run prog in
  (* shared is accessed from two functions: promotion must not touch it *)
  Helpers.check_outputs "semantics"
    (Vliw_interp.Interp.run prog ~input:[||]).outputs
    (Vliw_interp.Interp.run promoted ~input:[||]).outputs;
  let stores p =
    let n = ref 0 in
    Prog.iter_ops (fun op -> if Op.is_store op then incr n) p;
    !n
  in
  Alcotest.(check int) "stores unchanged" (stores prog) (stores promoted)

let test_promote_skips_escaping_address () =
  let src =
    {|
int cell;
void main() {
  int *p = &cell;
  p[0] = 9;
  out(cell);
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let promoted = Vliw_opt.Promote.run prog in
  Helpers.check_outputs "semantics"
    (Vliw_interp.Interp.run prog ~input:[||]).outputs
    (Vliw_interp.Interp.run promoted ~input:[||]).outputs

let test_constant_folding () =
  let prog =
    Helpers.compile ~unroll:false "void main() { out(2 + 3 * 4); out(10 / 0 + in(16)); }"
  in
  (* the first out's chain folds to a literal; division by a zero literal
     must NOT fold away (it still traps) *)
  let simplified = Vliw_opt.Simplify.run prog in
  let divs p =
    let n = ref 0 in
    Prog.iter_ops
      (fun op ->
        match Op.kind op with
        | Op.Ibin (Op.Div, _, _, _) -> incr n
        | _ -> ())
      p
  ;
    !n
  in
  Alcotest.(check int) "division kept" (divs prog) (divs simplified);
  let adds p =
    let n = ref 0 in
    Prog.iter_ops
      (fun op ->
        match Op.kind op with
        | Op.Ibin ((Op.Add | Op.Mul), _, Op.Imm _, Op.Imm _) -> incr n
        | _ -> ())
      p
  ;
    !n
  in
  Alcotest.(check bool) "constant ops folded" true (adds simplified < adds prog)

let test_copy_propagation () =
  let prog =
    Helpers.compile ~unroll:false
      "void main() { int a = in(0); int b = a; int c = b; out(c + 1); }"
  in
  let opt = Vliw_opt.Dce.run (Vliw_opt.Simplify.run prog) in
  let copies p =
    let n = ref 0 in
    Prog.iter_ops
      (fun op ->
        match Op.kind op with Op.Un (Op.Copy, _, _) -> incr n | _ -> ())
      p
  ;
    !n
  in
  Alcotest.(check bool) "copies removed" true (copies opt < copies prog);
  Helpers.check_outputs "semantics"
    (Vliw_interp.Interp.run prog ~input:Gen_minic.input).outputs
    (Vliw_interp.Interp.run opt ~input:Gen_minic.input).outputs

let test_dce_removes_dead_code () =
  let prog =
    Helpers.compile ~unroll:false
      "void main() { int dead = in(0) * 37; int live = in(1); out(live); }"
  in
  let opt = Vliw_opt.Dce.run prog in
  Alcotest.(check bool) "ops removed" true
    (Prog.num_ops opt < Prog.num_ops prog);
  Helpers.check_outputs "semantics"
    (Vliw_interp.Interp.run prog ~input:Gen_minic.input).outputs
    (Vliw_interp.Interp.run opt ~input:Gen_minic.input).outputs

let test_dce_keeps_stores_and_allocs () =
  let prog =
    Helpers.compile ~unroll:false
      "int g; void main() { int *p = malloc(2); p[0] = 1; g = 2; out(g); }"
  in
  let opt = Vliw_opt.Dce.run prog in
  let count kind_pred p =
    let n = ref 0 in
    Prog.iter_ops (fun op -> if kind_pred op then incr n) p;
    !n
  in
  Alcotest.(check int) "stores kept" (count Op.is_store prog)
    (count Op.is_store opt);
  Alcotest.(check int) "allocs kept" (count Op.is_alloc prog)
    (count Op.is_alloc opt)

let prop_opt_pipeline_preserves =
  Helpers.qcheck ~count:60
    "promote + simplify + dce + if-convert preserve semantics"
    (fun seed ->
      let src = Gen_minic.gen_program_with_seed seed in
      let prog = Minic.compile src in
      let opt =
        Vliw_opt.Dce.run
          (Vliw_opt.Ifconvert.run
             (Vliw_opt.Dce.run
                (Vliw_opt.Simplify.run (Vliw_opt.Promote.run prog))))
      in
      Vliw_ir.Validate.check opt;
      let a = Vliw_interp.Interp.run prog ~input:Gen_minic.input in
      let b = Vliw_interp.Interp.run opt ~input:Gen_minic.input in
      Helpers.equal_outputs a.outputs b.outputs)
    Gen_minic.arbitrary_program

let suite =
  [
    Alcotest.test_case "if-conversion flattens diamonds" `Quick
      test_ifconvert_flattens_diamonds;
    Alcotest.test_case "if-conversion preserves semantics" `Quick
      test_ifconvert_preserves_semantics;
    Alcotest.test_case "if-conversion keeps loops" `Quick
      test_ifconvert_keeps_loops;
    Alcotest.test_case "if-conversion skips calls" `Quick
      test_ifconvert_skips_calls;
    Alcotest.test_case "nested if-conversion" `Quick test_nested_if_conversion;
    Alcotest.test_case "straightening" `Quick test_straighten;
    Alcotest.test_case "scalar promotion" `Quick test_promote_scalars;
    Alcotest.test_case "promotion skips shared globals" `Quick
      test_promote_skips_shared_globals;
    Alcotest.test_case "promotion skips escaping addresses" `Quick
      test_promote_skips_escaping_address;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "copy propagation" `Quick test_copy_propagation;
    Alcotest.test_case "dce removes dead code" `Quick test_dce_removes_dead_code;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_stores_and_allocs;
    prop_opt_pipeline_preserves;
  ]
