test/test_opt.ml: Alcotest Func Gen_minic Helpers List Minic Op Prog Vliw_interp Vliw_ir Vliw_opt
