test/test_machine.ml: Alcotest List Vliw_machine
