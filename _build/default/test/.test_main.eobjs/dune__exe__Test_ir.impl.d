test/test_ir.ml: Alcotest Block Builder Data Func Hashtbl List Op Prog Reg Validate Vliw_ir Vliw_machine
