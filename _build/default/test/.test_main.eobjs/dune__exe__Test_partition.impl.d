test/test_partition.ml: Alcotest Array Benchsuite Block Data Gdp_core Hashtbl Helpers List Minic Op Partition Prog Reg Vliw_interp Vliw_ir Vliw_machine Vliw_sched
