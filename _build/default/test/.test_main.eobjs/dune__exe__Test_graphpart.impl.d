test/test_graphpart.ml: Alcotest Array Fun Graphpart Helpers List Printf QCheck Random
