test/test_interp.ml: Alcotest Benchsuite Fmt Gen_minic Helpers List Minic String Vliw_interp Vliw_ir
