test/gen_minic.ml: Array Buffer List Printf QCheck Random String
