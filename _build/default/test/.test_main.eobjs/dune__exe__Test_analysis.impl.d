test/test_analysis.ml: Alcotest Array Block Data Func Gen_minic Hashtbl Helpers List Minic Op Prog Reg String Vliw_analysis Vliw_interp Vliw_ir Vliw_opt
