test/test_pipeline.ml: Alcotest Benchsuite Gdp_core Gen_minic Helpers List Partition Vliw_interp Vliw_machine Vliw_sched
