test/test_minic.ml: Alcotest Fmt Gen_minic Helpers List Minic Vliw_interp Vliw_ir
