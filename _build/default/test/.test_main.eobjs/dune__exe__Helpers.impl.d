test/helpers.ml: Alcotest Fmt List Minic Partition QCheck QCheck_alcotest Vliw_interp Vliw_machine
