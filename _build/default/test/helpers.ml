(** Shared helpers for the test suites. *)

let qcheck ?(count = 100) name prop arb =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(** Compile MiniC source, failing the test on frontend errors. *)
let compile ?(unroll = false) src =
  try Minic.compile ~unroll src
  with Minic.Compile_error _ as e ->
    Alcotest.failf "compilation failed: %a" Minic.pp_error e

let run ?(input = [||]) prog = Vliw_interp.Interp.run prog ~input

(** Observable outputs as plain ints (fails on float outputs). *)
let int_outputs ?input prog =
  List.map
    (function
      | Vliw_interp.Interp.VInt i -> i
      | Vliw_interp.Interp.VFloat f ->
          Alcotest.failf "unexpected float output %g" f)
    (run ?input prog).Vliw_interp.Interp.outputs

let equal_outputs a b =
  List.length a = List.length b
  && List.for_all2 Vliw_interp.Interp.equal_value a b

let check_outputs what expected got =
  if not (equal_outputs expected got) then
    Alcotest.failf "%s: outputs differ (%a vs %a)" what
      Fmt.(list ~sep:sp Vliw_interp.Interp.pp_value)
      expected
      Fmt.(list ~sep:sp Vliw_interp.Interp.pp_value)
      got

let machine ?(move_latency = 5) () = Vliw_machine.paper_machine ~move_latency ()

(** Full context for a compiled program on a given input. *)
let context ?move_latency ?(input = [||]) prog =
  let reference = Vliw_interp.Interp.run prog ~input in
  ( reference,
    Partition.Methods.make_context
      ~machine:(machine ?move_latency ())
      ~prog ~profile:reference.Vliw_interp.Interp.profile () )
