(** Graph partitioner tests: construction, edge cut, balance, multilevel
    bisection, k-way, determinism — with qcheck properties on random
    graphs. *)

module G = Graphpart.Graph
module P = Graphpart.Partitioner

let simple_graph () =
  (* two 4-cliques joined by one light edge: the obvious bisection cuts
     only the bridge *)
  let weights = Array.init 8 (fun _ -> [| 1 |]) in
  let clique base =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if i < j then Some (base + i, base + j, 10) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  G.create ~ncon:1 ~weights ~edges:(clique 0 @ clique 4 @ [ (0, 4, 1) ])

let test_graph_basics () =
  let g = simple_graph () in
  Alcotest.(check int) "nodes" 8 (G.num_nodes g);
  Alcotest.(check int) "edges" 13 (G.num_edges g);
  Alcotest.(check int) "total weight" 8 (G.total_weight g 0)

let test_graph_merges_parallel_edges () =
  let g =
    G.create ~ncon:1
      ~weights:[| [| 1 |]; [| 1 |] |]
      ~edges:[ (0, 1, 2); (1, 0, 3) ]
  in
  Alcotest.(check int) "one edge" 1 (G.num_edges g);
  Alcotest.(check int) "summed weight" 5
    (G.edge_cut g [| 0; 1 |])

let test_graph_rejects () =
  Alcotest.check_raises "self edge" (Invalid_argument "Graph.create: self edge")
    (fun () ->
      ignore (G.create ~ncon:1 ~weights:[| [| 1 |] |] ~edges:[ (0, 0, 1) ]));
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph.create: edge endpoint out of range") (fun () ->
      ignore (G.create ~ncon:1 ~weights:[| [| 1 |] |] ~edges:[ (0, 3, 1) ]))

let test_bisect_cliques () =
  let g = simple_graph () in
  let part = P.bisect g in
  Alcotest.(check int) "cuts only the bridge" 1 (G.edge_cut g part);
  let w = G.part_weights g part ~nparts:2 0 in
  Alcotest.(check int) "balanced" 4 w.(0);
  Alcotest.(check int) "balanced" 4 w.(1)

let test_bisect_deterministic () =
  let g = simple_graph () in
  let p1 = P.bisect g and p2 = P.bisect g in
  Alcotest.(check (array int)) "same result" p1 p2

let test_kway () =
  (* four cliques in a ring; 4-way should isolate them *)
  let weights = Array.init 16 (fun _ -> [| 1 |]) in
  let clique base =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if i < j then Some (base + i, base + j, 10) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let bridges = [ (0, 4, 1); (4, 8, 1); (8, 12, 1); (12, 0, 1) ] in
  let g =
    G.create ~ncon:1 ~weights
      ~edges:(clique 0 @ clique 4 @ clique 8 @ clique 12 @ bridges)
  in
  let part = P.kway g ~nparts:4 in
  (* each clique uniform *)
  List.iter
    (fun base ->
      let p = part.(base) in
      List.iter
        (fun i -> Alcotest.(check int) "clique uniform" p part.(base + i))
        [ 1; 2; 3 ])
    [ 0; 4; 8; 12 ];
  (* all four parts used *)
  let used = Array.make 4 false in
  Array.iter (fun p -> used.(p) <- true) part;
  Alcotest.(check bool) "all parts used" true (Array.for_all Fun.id used)

let test_asymmetric_targets () =
  (* 10 unit-weight nodes, no edges; a 70/30 target must land ~7 on part 0 *)
  let weights = Array.init 10 (fun _ -> [| 1 |]) in
  let g = G.create ~ncon:1 ~weights ~edges:[] in
  let cfg =
    {
      (P.default_config ~ncon:1) with
      P.targets = Some [| 0.7 |];
      imbalance = [| 0.05 |];
    }
  in
  let part = P.bisect ~config:cfg g in
  let w = G.part_weights g part ~nparts:2 0 in
  Alcotest.(check bool) "part 0 gets the 70% share" true
    (w.(0) >= 6 && w.(0) <= 8)

let test_kway_rejects_non_power_of_two () =
  let g = simple_graph () in
  Alcotest.check_raises "nparts=3"
    (Invalid_argument "Partitioner.kway: nparts must be a positive power of two")
    (fun () -> ignore (P.kway g ~nparts:3))

(* ------------------------------------------------------------------ *)
(* Random graph properties                                             *)

let arbitrary_graph =
  let gen st =
    let n = 2 + Random.State.int st 40 in
    let ncon = 1 + Random.State.int st 2 in
    let weights =
      Array.init n (fun _ ->
          Array.init ncon (fun _ -> 1 + Random.State.int st 20))
    in
    let nedges = Random.State.int st (3 * n) in
    let edges =
      List.init nedges (fun _ ->
          let a = Random.State.int st n in
          let b = Random.State.int st n in
          (a, b, 1 + Random.State.int st 10))
      |> List.filter (fun (a, b, _) -> a <> b)
    in
    (n, ncon, weights, edges)
  in
  QCheck.make
    ~print:(fun (n, ncon, _, edges) ->
      Printf.sprintf "n=%d ncon=%d edges=%d" n ncon (List.length edges))
    gen

let prop_bisect_valid =
  Helpers.qcheck ~count:100 "bisection assigns every node to 0 or 1"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let part = P.bisect g in
      Array.length part = G.num_nodes g
      && Array.for_all (fun p -> p = 0 || p = 1) part)
    arbitrary_graph

let prop_bisect_balanced =
  Helpers.qcheck ~count:100
    "bisection is never worse than the cap plus one node (bin-packing \
     slack)"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let cfg = P.default_config ~ncon in
      let part = P.bisect ~config:cfg g in
      (* exact feasibility is a bin-packing question, so allow one
         heaviest-node of slack beyond the configured cap *)
      List.for_all
        (fun c ->
          let total = G.total_weight g c in
          let cap =
            max
              (int_of_float
                 (ceil ((1. +. cfg.P.imbalance.(c)) /. 2. *. float total)))
              ((total + 1) / 2)
          in
          let heaviest = ref 0 in
          for v = 0 to G.num_nodes g - 1 do
            heaviest := max !heaviest (G.node_weight g v c)
          done;
          let w = G.part_weights g part ~nparts:2 c in
          max w.(0) w.(1) <= cap + !heaviest)
        (List.init ncon Fun.id))
    arbitrary_graph

let prop_cut_nonnegative_and_bounded =
  Helpers.qcheck ~count:100 "edge cut is between 0 and the total edge weight"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let part = P.bisect g in
      let cut = G.edge_cut g part in
      let total =
        List.fold_left (fun acc (_, _, w) -> acc + w) 0 edges
      in
      cut >= 0 && cut <= total)
    arbitrary_graph

let prop_deterministic =
  Helpers.qcheck ~count:50 "bisection is deterministic"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      P.bisect g = P.bisect g)
    arbitrary_graph

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "parallel edges merge" `Quick
      test_graph_merges_parallel_edges;
    Alcotest.test_case "invalid graphs rejected" `Quick test_graph_rejects;
    Alcotest.test_case "bisect cliques" `Quick test_bisect_cliques;
    Alcotest.test_case "bisect deterministic" `Quick test_bisect_deterministic;
    Alcotest.test_case "kway ring of cliques" `Quick test_kway;
    Alcotest.test_case "asymmetric balance targets" `Quick
      test_asymmetric_targets;
    Alcotest.test_case "kway validates nparts" `Quick
      test_kway_rejects_non_power_of_two;
    prop_bisect_valid;
    prop_bisect_balanced;
    prop_cut_nonnegative_and_bounded;
    prop_deterministic;
  ]
