(** IR structure tests: operations, blocks, functions, programs, the
    builder and the validator. *)

open Vliw_ir

let mk ?guard id kind = Op.make ?guard ~id kind
let r = Reg.of_int

let test_defs_uses () =
  let check op defs uses =
    Alcotest.(check (list int)) "defs" defs (List.map Reg.to_int (Op.defs op));
    Alcotest.(check (list int)) "uses" uses (List.map Reg.to_int (Op.uses op))
  in
  check (mk 0 (Op.Ibin (Op.Add, r 2, Op.Reg (r 0), Op.Reg (r 1)))) [ 2 ] [ 0; 1 ];
  check (mk 1 (Op.Ibin (Op.Add, r 2, Op.Reg (r 0), Op.Imm 3))) [ 2 ] [ 0 ];
  check (mk 2 (Op.Load { dst = r 4; base = Op.Reg (r 1); offset = Op.Imm 0 }))
    [ 4 ] [ 1 ];
  check
    (mk 3
       (Op.Store { src = Op.Reg (r 2); base = Op.Reg (r 1); offset = Op.Reg (r 0) }))
    [] [ 2; 1; 0 ];
  check (mk 4 (Op.Cbr { cond = Op.Reg (r 5); if_true = "a"; if_false = "b" }))
    [] [ 5 ];
  check (mk 5 (Op.Ret None)) [] [];
  check (mk 6 (Op.Move { dst = r 7; src = r 6 })) [ 7 ] [ 6 ];
  check (mk 7 (Op.Call { dst = Some (r 1); callee = "f"; args = [ Op.Reg (r 0) ] }))
    [ 1 ] [ 0 ]

let test_guard_uses () =
  let g = { Op.greg = r 9; gsense = true } in
  let op = mk ~guard:g 0 (Op.Un (Op.Copy, r 1, Op.Reg (r 0))) in
  Alcotest.(check (list int)) "guard reg is a use" [ 9; 0 ]
    (List.map Reg.to_int (Op.uses op));
  Alcotest.(check bool) "guarded" true (Op.is_guarded op)

let test_guarded_terminator_rejected () =
  let g = { Op.greg = r 0; gsense = true } in
  Alcotest.check_raises "guarded jmp"
    (Invalid_argument "Op.with_guard: guarded terminator") (fun () ->
      ignore (Op.with_guard (mk 0 (Op.Jmp "x")) g))

let test_classification () =
  Alcotest.(check bool) "load is mem" true
    (Op.is_mem (mk 0 (Op.Load { dst = r 0; base = Op.Imm 0; offset = Op.Imm 0 })));
  Alcotest.(check bool) "alloc touches object" true
    (Op.touches_object (mk 1 (Op.Alloc { dst = r 0; size = Op.Imm 8; site = 0 })));
  Alcotest.(check bool) "add not mem" false
    (Op.is_mem (mk 2 (Op.Ibin (Op.Add, r 0, Op.Imm 1, Op.Imm 2))));
  Alcotest.(check bool) "ret is terminator" true (Op.is_terminator (mk 3 (Op.Ret None)))

let test_fu_kinds () =
  let fu op = Op.fu_kind op in
  Alcotest.(check bool) "load on mem unit" true
    (fu (mk 0 (Op.Load { dst = r 0; base = Op.Imm 0; offset = Op.Imm 0 }))
    = Vliw_machine.FU_memory);
  Alcotest.(check bool) "fadd on float unit" true
    (fu (mk 1 (Op.Fbin (Op.Fadd, r 0, Op.Fimm 1., Op.Fimm 2.)))
    = Vliw_machine.FU_float);
  Alcotest.(check bool) "branch on branch unit" true
    (fu (mk 2 (Op.Jmp "x")) = Vliw_machine.FU_branch);
  Alcotest.(check bool) "add on int unit" true
    (fu (mk 3 (Op.Ibin (Op.Add, r 0, Op.Imm 1, Op.Imm 2))) = Vliw_machine.FU_int)

let test_latencies () =
  let l = Vliw_machine.itanium_latencies in
  let lat k = Op.latency l (mk 0 k) in
  Alcotest.(check int) "load latency" 2
    (lat (Op.Load { dst = r 0; base = Op.Imm 0; offset = Op.Imm 0 }));
  Alcotest.(check int) "mul latency" 3
    (lat (Op.Ibin (Op.Mul, r 0, Op.Imm 1, Op.Imm 2)));
  Alcotest.(check int) "add latency" 1
    (lat (Op.Ibin (Op.Add, r 0, Op.Imm 1, Op.Imm 2)))

let test_block_invariants () =
  let term = mk 2 (Op.Ret None) in
  let body = [ mk 0 (Op.Ibin (Op.Add, r 0, Op.Imm 1, Op.Imm 2)) ] in
  let b = Block.v ~label:"bb0" ~body ~term in
  Alcotest.(check int) "num ops" 2 (Block.num_ops b);
  Alcotest.check_raises "non-terminator as term"
    (Invalid_argument "Block.v: terminator operation expected") (fun () ->
      ignore (Block.v ~label:"x" ~body:[] ~term:(List.hd body)));
  Alcotest.check_raises "terminator in body"
    (Invalid_argument "Block.v: terminator in block body") (fun () ->
      ignore (Block.v ~label:"x" ~body:[ term ] ~term))

let test_func_invariants () =
  let block label = Block.v ~label ~body:[] ~term:(mk (Hashtbl.hash label) (Op.Ret None)) in
  Alcotest.check_raises "empty function"
    (Invalid_argument "Func.v: function with no blocks") (fun () ->
      ignore (Func.v ~name:"f" ~params:[] ~blocks:[] ~reg_count:0));
  Alcotest.check_raises "duplicate labels"
    (Invalid_argument "Func.v: duplicate label a") (fun () ->
      ignore
        (Func.v ~name:"f" ~params:[] ~blocks:[ block "a"; block "a" ]
           ~reg_count:0))

let test_builder_roundtrip () =
  let b = Builder.create () in
  Builder.add_global b (Data.global "g" 4);
  let fb, params = Builder.start_func b ~name:"main" ~nparams:0 in
  Alcotest.(check int) "no params" 0 (List.length params);
  Builder.start_block fb (Builder.fresh_label fb);
  let a = Builder.addr fb "g" in
  let v = Builder.load fb ~base:(Op.Reg a) ~offset:(Op.Imm 0) in
  let s = Builder.ibin fb Op.Add (Op.Reg v) (Op.Imm 1) in
  Builder.store fb ~src:(Op.Reg s) ~base:(Op.Reg a) ~offset:(Op.Imm 8);
  Builder.terminate fb (Op.Ret None);
  let (_ : Func.t) = Builder.finish_func fb in
  let prog = Builder.finish b in
  Validate.check prog;
  Alcotest.(check int) "op count" 5 (Prog.op_count prog);
  Alcotest.(check int) "num ops" 5 (Prog.num_ops prog)

let test_builder_misuse () =
  let b = Builder.create () in
  let fb, _ = Builder.start_func b ~name:"main" ~nparams:0 in
  Alcotest.check_raises "emit without block"
    (Invalid_argument "Builder.emit: no current block") (fun () ->
      ignore (Builder.emit fb (Op.Ret None)));
  Builder.start_block fb "bb0";
  Alcotest.check_raises "emit terminator"
    (Invalid_argument "Builder.emit: use terminate for terminators") (fun () ->
      ignore (Builder.emit fb (Op.Ret None)))

let test_validate_catches () =
  let b = Builder.create () in
  let fb, _ = Builder.start_func b ~name:"main" ~nparams:0 in
  Builder.start_block fb "bb0";
  Builder.terminate fb (Op.Jmp "nowhere");
  let (_ : Func.t) = Builder.finish_func fb in
  let prog = Builder.finish b in
  Alcotest.(check bool) "invalid" false (Validate.is_valid prog)

let test_validate_missing_main () =
  let b = Builder.create () in
  let fb, _ = Builder.start_func b ~name:"not_main" ~nparams:0 in
  Builder.start_block fb "bb0";
  Builder.terminate fb (Op.Ret None);
  let (_ : Func.t) = Builder.finish_func fb in
  Alcotest.(check bool) "no main" false (Validate.is_valid (Builder.finish b))

let test_data_objects () =
  let tab =
    Data.table_of
      ~globals:[ Data.global "a" 4; Data.global "b" 1 ]
      ~heap_sizes:[ (0, 100) ]
  in
  Alcotest.(check int) "objects" 3 (Data.table_length tab);
  Alcotest.(check int) "array bytes" 32 (Data.size_of_obj tab (Data.Global "a"));
  Alcotest.(check int) "scalar bytes" 8 (Data.size_of_obj tab (Data.Global "b"));
  Alcotest.(check int) "heap bytes" 100 (Data.size_of_obj tab (Data.Heap 0));
  Alcotest.(check int) "total" 140 (Data.total_bytes tab);
  Alcotest.(check bool) "ordering" true
    (Data.compare_obj (Data.Global "a") (Data.Heap 0) < 0)

let suite =
  [
    Alcotest.test_case "defs and uses" `Quick test_defs_uses;
    Alcotest.test_case "guard registers are uses" `Quick test_guard_uses;
    Alcotest.test_case "guarded terminators rejected" `Quick
      test_guarded_terminator_rejected;
    Alcotest.test_case "op classification" `Quick test_classification;
    Alcotest.test_case "fu kinds" `Quick test_fu_kinds;
    Alcotest.test_case "latencies" `Quick test_latencies;
    Alcotest.test_case "block invariants" `Quick test_block_invariants;
    Alcotest.test_case "func invariants" `Quick test_func_invariants;
    Alcotest.test_case "builder roundtrip" `Quick test_builder_roundtrip;
    Alcotest.test_case "builder misuse" `Quick test_builder_misuse;
    Alcotest.test_case "validator catches bad labels" `Quick test_validate_catches;
    Alcotest.test_case "validator requires main" `Quick test_validate_missing_main;
    Alcotest.test_case "data object table" `Quick test_data_objects;
  ]
