(** Analysis tests: CFG, dominators, loops, liveness, reaching
    definitions, points-to, program-level DFG. *)

open Vliw_ir
module An = Vliw_analysis

let diamond_src =
  {|
int g;
void main() {
  int x = in(0);
  if (x > 0) { g = 1; } else { g = 2; }
  out(g + x);
}
|}

let loop_src =
  {|
void main() {
  int s = 0;
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 2; j = j + 1) { s = s + j; }
  }
  out(s);
}
|}

let cfg_of src =
  let prog = Helpers.compile ~unroll:false src in
  (prog, An.Cfg.of_func (Prog.main prog))

let test_cfg_structure () =
  let _, cfg = cfg_of diamond_src in
  Alcotest.(check int) "blocks" 4 (An.Cfg.num_blocks cfg);
  Alcotest.(check int) "entry succs" 2 (List.length (An.Cfg.successors cfg 0));
  Alcotest.(check int) "entry preds" 0 (List.length (An.Cfg.predecessors cfg 0));
  (* rpo covers all reachable blocks exactly once *)
  let rpo = An.Cfg.reverse_postorder cfg in
  Alcotest.(check int) "rpo size" 4 (Array.length rpo);
  let sorted = Array.copy rpo in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "rpo is a permutation" [| 0; 1; 2; 3 |] sorted

let test_dominators () =
  let _, cfg = cfg_of diamond_src in
  let idom = An.Cfg.dominators cfg in
  Alcotest.(check int) "entry self-dominated" 0 idom.(0);
  (* both branch sides and the join are dominated by the entry *)
  for i = 1 to 3 do
    Alcotest.(check bool) "entry dominates"
      true
      (An.Cfg.dominates idom 0 i)
  done;
  (* branch sides do not dominate the join *)
  let join =
    (* the join is the block whose successors are empty or that has two preds *)
    let found = ref (-1) in
    for i = 0 to 3 do
      if List.length (An.Cfg.predecessors cfg i) = 2 then found := i
    done;
    !found
  in
  Alcotest.(check bool) "join exists" true (join >= 0);
  List.iter
    (fun side ->
      Alcotest.(check bool) "side does not dominate join" false
        (An.Cfg.dominates idom side join))
    (An.Cfg.successors cfg 0)

let test_loop_depths () =
  let _, cfg = cfg_of loop_src in
  let depth = An.Cfg.loop_depths cfg in
  let max_depth = Array.fold_left max 0 depth in
  Alcotest.(check int) "nested loops" 2 max_depth;
  Alcotest.(check int) "entry not in a loop" 0 depth.(0)

let test_liveness () =
  let prog, cfg = cfg_of diamond_src in
  ignore prog;
  let live = An.Liveness.compute cfg in
  (* x is defined in the entry and used in the join: live out of entry *)
  let entry_live_out = An.Liveness.live_out live 0 in
  Alcotest.(check bool) "something live across the branch" true
    (not (Reg.Set.is_empty entry_live_out))

let test_reaching_defs () =
  let prog, cfg = cfg_of diamond_src in
  ignore prog;
  let reach = An.Reaching.compute cfg in
  (* find the op using g's loaded value in the join; its load has one
     reaching def, while g's memory has two stores -- here we check the
     register-level chain: the "out" op's used regs each have >= 1 def *)
  let f = An.Cfg.block cfg 0 in
  ignore f;
  let ok = ref true in
  An.Cfg.iter_rpo
    (fun _ b ->
      List.iter
        (fun op ->
          List.iter
            (fun r ->
              let defs =
                An.Reaching.defs_of_use reach ~op_id:(Op.id op) ~reg:r
              in
              if An.Reaching.Int_set.is_empty defs then ok := false)
            (Op.uses op))
        (Block.ops b))
    cfg;
  Alcotest.(check bool) "every use has a reaching def" true !ok

let test_reaching_guarded_defs_accumulate () =
  (* after if-conversion, a guarded def must not kill the incoming def;
     use a register (local) diamond so the defs are register writes *)
  let local_diamond =
    {|
void main() {
  int x = in(0);
  int y = 0;
  if (x > 0) { y = 1; } else { y = 2; }
  out(y + x);
}
|}
  in
  let prog = Helpers.compile ~unroll:false local_diamond in
  let prog = Vliw_opt.Ifconvert.run prog in
  let f = Prog.main prog in
  let cfg = An.Cfg.of_func f in
  let reach = An.Reaching.compute cfg in
  (* find a use whose register has two or more reaching defs (the guarded
     g = 1 / g = 2 copies) *)
  let multi = ref 0 in
  Func.iter_ops
    (fun op ->
      List.iter
        (fun r ->
          let defs = An.Reaching.defs_of_use reach ~op_id:(Op.id op) ~reg:r in
          if An.Reaching.Int_set.cardinal defs >= 2 then incr multi)
        (Op.uses op))
    f;
  Alcotest.(check bool) "guarded defs accumulate" true (!multi > 0)

let test_points_to_basic () =
  let src =
    {|
int table[4] = {1, 2, 3, 4};
int other[4];
void main() {
  int *p = table;
  int x = in(0);
  if (x > 0) { p = other; }
  out(p[1]);
  out(other[0]);
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let pt = An.Points_to.compute prog in
  (* the p[1] load may access both arrays; the other[0] load only one *)
  let sizes = ref [] in
  Prog.iter_ops
    (fun op ->
      if Op.is_load op then
        sizes :=
          Data.Obj_set.cardinal (An.Points_to.objects_of pt (Op.id op))
          :: !sizes)
    prog;
  let sizes = List.sort compare !sizes in
  Alcotest.(check (list int)) "ambiguity" [ 1; 2 ] sizes

let test_points_to_interprocedural () =
  let src =
    {|
int a[4];
int b[4];
int get(int *p, int i) { return p[i]; }
void main() {
  out(get(a, 0) + get(b, 1));
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let pt = An.Points_to.compute prog in
  (* the load inside get sees both a and b *)
  let get_load = ref None in
  Func.iter_ops
    (fun op -> if Op.is_load op then get_load := Some (Op.id op))
    (Prog.find_func prog "get");
  match !get_load with
  | None -> Alcotest.fail "no load in get"
  | Some id ->
      let objs = An.Points_to.objects_of pt id in
      Alcotest.(check int) "sees both arrays" 2 (Data.Obj_set.cardinal objs)

let test_points_to_heap () =
  let src =
    {|
void main() {
  int *p = malloc(4);
  int *q = malloc(4);
  p[0] = 1;
  q[0] = 2;
  out(p[0] + q[0]);
}
|}
  in
  let prog = Helpers.compile ~unroll:false src in
  let pt = An.Points_to.compute prog in
  (* every memory op is unambiguous: exactly one heap object *)
  Prog.iter_ops
    (fun op ->
      if Op.is_mem op then
        Alcotest.(check int) "singleton" 1
          (Data.Obj_set.cardinal (An.Points_to.objects_of pt (Op.id op))))
    prog

(** Points-to soundness: every dynamically accessed object is in the
    static set of its operation. *)
let prop_points_to_sound =
  Helpers.qcheck ~count:50 "points-to is sound on executions"
    (fun seed ->
      let prog = Minic.compile (Gen_minic.gen_program_with_seed seed) in
      let pt = An.Points_to.compute prog in
      let res = Vliw_interp.Interp.run prog ~input:Gen_minic.input in
      let sound = ref true in
      Prog.iter_ops
        (fun op ->
          if Op.is_mem op then
            List.iter
              (fun (obj, _count) ->
                if
                  not
                    (Data.Obj_set.mem obj
                       (An.Points_to.objects_of pt (Op.id op)))
                then sound := false)
              (Vliw_interp.Profile.accesses_of
                 res.Vliw_interp.Interp.profile ~op_id:(Op.id op)))
        prog;
      !sound)
    Gen_minic.arbitrary_program

let prop_no_uninitialized_reads =
  Helpers.qcheck ~count:50
    "no register is live into main's entry (no use-before-def)"
    (fun seed ->
      let prog = Minic.compile (Gen_minic.gen_program_with_seed seed) in
      List.for_all
        (fun f ->
          let cfg = An.Cfg.of_func f in
          let live = An.Liveness.compute cfg in
          let entry_in = An.Liveness.live_in live 0 in
          (* parameters are legitimately live-in *)
          Reg.Set.subset entry_in (Reg.Set.of_list (Func.params f)))
        (Prog.funcs prog))
    Gen_minic.arbitrary_program

let test_prog_dfg () =
  let prog = Helpers.compile ~unroll:false diamond_src in
  let dfg = An.Prog_dfg.compute prog in
  Alcotest.(check bool) "has edges" true (An.Prog_dfg.num_edges dfg > 0);
  (* all endpoints are valid op ids *)
  let max_id = Prog.op_count prog in
  An.Prog_dfg.iter_edges
    (fun a b w ->
      Alcotest.(check bool) "endpoints in range" true
        (a >= 0 && a < max_id && b >= 0 && b < max_id && w > 0 && a <> b))
    dfg

let test_prog_dfg_interprocedural () =
  let src =
    "int f(int x) { return x * 2; } void main() { out(f(in(0))); }"
  in
  let prog = Helpers.compile ~unroll:false src in
  let dfg = An.Prog_dfg.compute prog in
  (* there must be edges between ops of different functions *)
  let index = Prog.op_index prog in
  let cross = ref 0 in
  An.Prog_dfg.iter_edges
    (fun a b _ ->
      let _, fa, _ = Hashtbl.find index a in
      let _, fb, _ = Hashtbl.find index b in
      if not (String.equal (Func.name fa) (Func.name fb)) then incr cross)
    dfg;
  Alcotest.(check bool) "cross-function edges" true (!cross >= 2)

let suite =
  [
    Alcotest.test_case "cfg structure" `Quick test_cfg_structure;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "loop depths" `Quick test_loop_depths;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "reaching definitions" `Quick test_reaching_defs;
    Alcotest.test_case "guarded defs accumulate" `Quick
      test_reaching_guarded_defs_accumulate;
    Alcotest.test_case "points-to ambiguity" `Quick test_points_to_basic;
    Alcotest.test_case "points-to interprocedural" `Quick
      test_points_to_interprocedural;
    Alcotest.test_case "points-to heap sites" `Quick test_points_to_heap;
    prop_points_to_sound;
    prop_no_uninitialized_reads;
    Alcotest.test_case "program dfg" `Quick test_prog_dfg;
    Alcotest.test_case "program dfg crosses functions" `Quick
      test_prog_dfg_interprocedural;
  ]
