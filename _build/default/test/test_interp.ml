(** Interpreter and profiler tests. *)

module I = Vliw_interp.Interp
module P = Vliw_interp.Profile

let test_arith () =
  let prog =
    Helpers.compile
      {|
void main() {
  out(7 / 2);
  out(-7 / 2);
  out(7 % 3);
  out(1 << 4);
  out(-16 >> 2);
  out(6 & 3);
  out(6 | 3);
  out(6 ^ 3);
  out(!0);
  out(!5);
  out(-(3));
}
|}
  in
  Alcotest.(check (list int)) "values"
    [ 3; -3; 1; 16; -4; 2; 7; 5; 1; 0; -3 ]
    (Helpers.int_outputs prog)

let test_float_arith () =
  let prog =
    Helpers.compile
      {|
void main() {
  float a = 1.5;
  float b = 0.25;
  outf(a + b);
  outf(a * b);
  outf(a / b);
  out(ftoi(a * 2.0));
  outf(itof(7) / 2.0);
  out(a > b);
  out(a < b);
}
|}
  in
  match (Helpers.run prog).I.outputs with
  | [ VFloat 1.75; VFloat 0.375; VFloat 6.; VInt 3; VFloat 3.5; VInt 1; VInt 0 ]
    ->
      ()
  | outs ->
      Alcotest.failf "bad outputs %a" Fmt.(list ~sep:sp I.pp_value) outs

let test_control_flow () =
  let prog =
    Helpers.compile
      {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main() {
  out(fib(10));
  int s = 0;
  int i = 0;
  while (i < 5) { s = s + i * i; i = i + 1; }
  out(s);
}
|}
  in
  Alcotest.(check (list int)) "values" [ 55; 30 ] (Helpers.int_outputs prog)

let test_heap_and_input () =
  let prog =
    Helpers.compile
      {|
void main() {
  int *p = malloc(4);
  int *q = malloc(4);
  for (int i = 0; i < 4; i = i + 1) { p[i] = in(i); q[i] = in(i) * 10; }
  out(p[2] + q[1]);
}
|}
  in
  Alcotest.(check (list int)) "values" [ 23 ]
    (Helpers.int_outputs ~input:[| 5; 2; 3; 4 |] prog)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_runtime_error src ?(input = [||]) fragment =
  let prog = Helpers.compile src in
  match I.run prog ~input with
  | _ -> Alcotest.failf "expected a runtime error mentioning %S" fragment
  | exception I.Runtime_error m ->
      if not (contains m fragment) then
        Alcotest.failf "error %S does not mention %S" m fragment

let test_runtime_errors () =
  expect_runtime_error "int z; void main() { out(3 / z); }" "division by zero";
  expect_runtime_error "int a[2]; void main() { out(a[5]); }" "wild memory";
  expect_runtime_error "void main() { out(in(3)); }" "out of bounds";
  expect_runtime_error
    "void main() { while (1) { int x = 0; } }" "out of fuel"

let test_out_of_bounds_heap () =
  expect_runtime_error
    "void main() { int *p = malloc(2); out(p[2]); }" "wild memory"

let test_profile_counts () =
  let prog =
    Helpers.compile ~unroll:false
      {|
int a[4] = {1, 2, 3, 4};
void main() {
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) { s = s + a[i]; }
  out(s);
}
|}
  in
  let res = Helpers.run prog in
  (* find the load of a[i]: executed 4 times, all on @a *)
  let found = ref false in
  Vliw_ir.Prog.iter_ops
    (fun op ->
      if Vliw_ir.Op.is_load op then begin
        let accesses = P.accesses_of res.I.profile ~op_id:(Vliw_ir.Op.id op) in
        match accesses with
        | [ (Vliw_ir.Data.Global "a", 4) ] -> found := true
        | _ -> ()
      end)
    prog;
  Alcotest.(check bool) "a loaded 4x" true !found

let test_heap_profile_sizes () =
  let prog =
    Helpers.compile
      "void main() { int *p = malloc(10); p[0] = 1; out(p[0]); }"
  in
  let res = Helpers.run prog in
  Alcotest.(check (list (pair int int))) "heap sizes" [ (0, 80) ]
    (P.heap_sizes res.I.profile);
  let tab = P.object_table prog res.I.profile in
  Alcotest.(check int) "heap object size" 80
    (Vliw_ir.Data.size_of_obj tab (Vliw_ir.Data.Heap 0))

let test_block_counts () =
  let prog =
    Helpers.compile ~unroll:false
      "void main() { for (int i = 0; i < 7; i = i + 1) { out(i); } }"
  in
  let res = Helpers.run prog in
  (* some block executed exactly 7 times (the loop body) *)
  let sevens = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          if
            P.block_count res.I.profile ~func:(Vliw_ir.Func.name f)
              ~label:(Vliw_ir.Block.label b)
            = 7
          then incr sevens)
        (Vliw_ir.Func.blocks f))
    (Vliw_ir.Prog.funcs prog);
  Alcotest.(check bool) "loop body counted" true (!sevens >= 1)

let test_determinism () =
  let b = Benchsuite.Suite.find "rawcaudio" in
  let prog = Benchsuite.Suite.compile b in
  let r1 = I.run prog ~input:b.Benchsuite.Bench_intf.input in
  let r2 = I.run prog ~input:b.Benchsuite.Bench_intf.input in
  Alcotest.(check bool) "same outputs" true
    (Helpers.equal_outputs r1.I.outputs r2.I.outputs);
  Alcotest.(check int) "same steps" r1.I.steps r2.I.steps

let prop_interp_deterministic =
  Helpers.qcheck ~count:40 "interpretation is deterministic"
    (fun seed ->
      let prog = Minic.compile (Gen_minic.gen_program_with_seed seed) in
      let a = I.run prog ~input:Gen_minic.input in
      let b = I.run prog ~input:Gen_minic.input in
      Helpers.equal_outputs a.I.outputs b.I.outputs && a.I.steps = b.I.steps)
    Gen_minic.arbitrary_program

let suite =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_arith;
    Alcotest.test_case "float arithmetic" `Quick test_float_arith;
    Alcotest.test_case "control flow and recursion" `Quick test_control_flow;
    Alcotest.test_case "heap and input" `Quick test_heap_and_input;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "heap bounds checking" `Quick test_out_of_bounds_heap;
    Alcotest.test_case "per-op access profile" `Quick test_profile_counts;
    Alcotest.test_case "heap size profile" `Quick test_heap_profile_sizes;
    Alcotest.test_case "block counts" `Quick test_block_counts;
    Alcotest.test_case "benchmark determinism" `Quick test_determinism;
    prop_interp_deterministic;
  ]
