(** Scheduling substrate tests: dependence graphs, the cluster-aware list
    scheduler, move insertion, and the cycle-level simulator. *)

open Vliw_ir
module D = Vliw_sched.Deps
module A = Vliw_sched.Assignment
module LS = Vliw_sched.List_sched
module MI = Vliw_sched.Move_insert

let machine = Helpers.machine ()

(** Build a block from op kinds (last one must be a terminator). *)
let block_of kinds =
  let ops = List.mapi (fun i k -> Op.make ~id:i k) kinds in
  match List.rev ops with
  | term :: rev_body ->
      Block.v ~label:"bb0" ~body:(List.rev rev_body) ~term
  | [] -> assert false

let edge_exists deps src dst =
  List.exists (fun (j, _) -> j = dst) (D.succs deps src)

let r = Reg.of_int

let test_flow_and_anti_edges () =
  let b =
    block_of
      [
        Op.Ibin (Op.Add, r 0, Op.Imm 1, Op.Imm 2);
        (* 0: def r0 *)
        Op.Ibin (Op.Add, r 1, Op.Reg (r 0), Op.Imm 1);
        (* 1: use r0 *)
        Op.Ibin (Op.Add, r 0, Op.Imm 5, Op.Imm 6);
        (* 2: redef r0 *)
        Op.Ret None;
      ]
  in
  let deps = D.build ~machine b in
  Alcotest.(check bool) "flow 0->1" true (edge_exists deps 0 1);
  Alcotest.(check bool) "anti 1->2" true (edge_exists deps 1 2);
  Alcotest.(check bool) "output 0->2" true (edge_exists deps 0 2);
  Alcotest.(check bool) "all before term" true
    (edge_exists deps 0 3 && edge_exists deps 1 3 && edge_exists deps 2 3)

let test_memory_edges () =
  let b =
    block_of
      [
        Op.Store { src = Op.Imm 1; base = Op.Imm 0x1000; offset = Op.Imm 0 };
        Op.Load { dst = r 0; base = Op.Imm 0x1000; offset = Op.Imm 0 };
        Op.Store { src = Op.Imm 2; base = Op.Imm 0x1000; offset = Op.Imm 8 };
        Op.Ret None;
      ]
  in
  (* without points-to everything aliases *)
  let deps = D.build ~machine b in
  Alcotest.(check bool) "store->load" true (edge_exists deps 0 1);
  Alcotest.(check bool) "load->store (anti)" true (edge_exists deps 1 2);
  Alcotest.(check bool) "store->store" true (edge_exists deps 0 2);
  (* with disjoint objects the edges disappear *)
  let objects_of id =
    if id = 0 then Data.Obj_set.singleton (Data.Global "a")
    else Data.Obj_set.singleton (Data.Global "b")
  in
  let deps = D.build ~objects_of ~machine b in
  Alcotest.(check bool) "disambiguated" false (edge_exists deps 0 1)

let test_out_ordering () =
  let b =
    block_of [ Op.Out (Op.Imm 1); Op.Out (Op.Imm 2); Op.Ret None ]
  in
  let deps = D.build ~machine b in
  Alcotest.(check bool) "out->out" true (edge_exists deps 0 1)

let test_heights_and_asap () =
  let b =
    block_of
      [
        Op.Load { dst = r 0; base = Op.Imm 0x1000; offset = Op.Imm 0 };
        Op.Ibin (Op.Mul, r 1, Op.Reg (r 0), Op.Imm 3);
        Op.Ibin (Op.Add, r 2, Op.Reg (r 1), Op.Imm 1);
        Op.Ret None;
      ]
  in
  let deps = D.build ~machine b in
  (* load(2) -> mul(3) -> add(1): heights give 2+3+1 = 6 *)
  Alcotest.(check int) "critical path" 6 (D.critical_path deps);
  let times = D.asap_alap deps in
  let asap i = fst times.(i) and alap i = snd times.(i) in
  Alcotest.(check int) "asap load" 0 (asap 0);
  Alcotest.(check int) "asap mul" 2 (asap 1);
  Alcotest.(check int) "asap add" 5 (asap 2);
  (* everything on the chain has zero slack *)
  Alcotest.(check int) "alap load" 0 (alap 0);
  Alcotest.(check int) "alap mul" 2 (alap 1)

(* ------------------------------------------------------------------ *)
(* List scheduler                                                      *)

let all_on cluster block =
  let a = A.create ~num_clusters:2 in
  List.iter (fun op -> A.set_cluster a ~op_id:(Op.id op) cluster) (Block.ops block);
  a

let test_scheduler_resources () =
  (* 4 independent loads on one cluster with 1 memory unit: they must
     issue in 4 distinct cycles *)
  let b =
    block_of
      [
        Op.Load { dst = r 0; base = Op.Imm 0x1000; offset = Op.Imm 0 };
        Op.Load { dst = r 1; base = Op.Imm 0x1000; offset = Op.Imm 8 };
        Op.Load { dst = r 2; base = Op.Imm 0x1000; offset = Op.Imm 16 };
        Op.Load { dst = r 3; base = Op.Imm 0x1000; offset = Op.Imm 24 };
        Op.Ret None;
      ]
  in
  let assign = all_on 0 b in
  let s =
    LS.schedule_block ~machine ~assign ~move_routes:(Hashtbl.create 0) b
  in
  let load_cycles =
    Array.to_list (LS.entries s)
    |> List.filter_map (fun (e : LS.entry) ->
           if Op.is_load e.LS.op then Some e.LS.cycle else None)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "distinct cycles" 4 (List.length load_cycles);
  Alcotest.(check bool) "length >= 4" true (LS.length s >= 4)

let test_scheduler_uses_both_clusters () =
  (* the same 4 loads split across clusters halve the span *)
  let b =
    block_of
      [
        Op.Load { dst = r 0; base = Op.Imm 0x1000; offset = Op.Imm 0 };
        Op.Load { dst = r 1; base = Op.Imm 0x1000; offset = Op.Imm 8 };
        Op.Load { dst = r 2; base = Op.Imm 0x1000; offset = Op.Imm 16 };
        Op.Load { dst = r 3; base = Op.Imm 0x1000; offset = Op.Imm 24 };
        Op.Ret None;
      ]
  in
  let assign = A.create ~num_clusters:2 in
  List.iteri
    (fun i op -> A.set_cluster assign ~op_id:(Op.id op) (i mod 2))
    (Block.body b);
  A.set_cluster assign ~op_id:(Op.id (Block.term b)) 0;
  let split =
    LS.schedule_block ~machine ~assign ~move_routes:(Hashtbl.create 0) b
  in
  let serial =
    LS.schedule_block ~machine ~assign:(all_on 0 b)
      ~move_routes:(Hashtbl.create 0) b
  in
  Alcotest.(check bool) "split is faster" true
    (LS.length split < LS.length serial)

let test_scheduler_latency_respected () =
  let b =
    block_of
      [
        Op.Fbin (Op.Fdiv, r 0, Op.Fimm 1., Op.Fimm 3.);
        Op.Fbin (Op.Fadd, r 1, Op.Reg (r 0), Op.Fimm 1.);
        Op.Out (Op.Reg (r 1));
        Op.Ret None;
      ]
  in
  let s =
    LS.schedule_block ~machine ~assign:(all_on 0 b)
      ~move_routes:(Hashtbl.create 0) b
  in
  let cycle_of i =
    let found = ref (-1) in
    Array.iter
      (fun (e : LS.entry) -> if Op.id e.LS.op = i then found := e.LS.cycle)
      (LS.entries s);
    !found
  in
  let l = Vliw_machine.itanium_latencies in
  Alcotest.(check bool) "fadd waits for fdiv" true
    (cycle_of 1 >= cycle_of 0 + l.Vliw_machine.float_div)

let test_bus_bandwidth () =
  (* two parallel moves on a 1-move/cycle bus issue in different cycles *)
  let b =
    block_of
      [
        Op.Ibin (Op.Add, r 0, Op.Imm 1, Op.Imm 2);
        Op.Ibin (Op.Add, r 1, Op.Imm 3, Op.Imm 4);
        Op.Move { dst = r 2; src = r 0 };
        Op.Move { dst = r 3; src = r 1 };
        Op.Ret None;
      ]
  in
  let assign = A.create ~num_clusters:2 in
  List.iter (fun op -> A.set_cluster assign ~op_id:(Op.id op) 0) (Block.ops b);
  A.set_cluster assign ~op_id:2 1;
  A.set_cluster assign ~op_id:3 1;
  let move_routes = Hashtbl.create 4 in
  Hashtbl.replace move_routes 2 (0, 1);
  Hashtbl.replace move_routes 3 (0, 1);
  let s = LS.schedule_block ~machine ~assign ~move_routes b in
  let moves =
    Array.to_list (LS.entries s)
    |> List.filter_map (fun (e : LS.entry) ->
           if Op.is_move e.LS.op then Some e.LS.cycle else None)
  in
  Alcotest.(check int) "two moves" 2 (List.length moves);
  Alcotest.(check bool) "different cycles" true
    (List.length (List.sort_uniq compare moves) = 2)

let test_lower_bound_holds_on_benchmarks () =
  List.iter
    (fun name ->
      let b = Benchsuite.Suite.find name in
      let p = Gdp_core.Pipeline.prepare b in
      let ctx = Gdp_core.Pipeline.context ~machine p in
      let o = Partition.Methods.run Partition.Methods.Gdp ctx in
      let c = o.Partition.Methods.clustered in
      List.iter
        (fun f ->
          let cfg = Vliw_analysis.Cfg.of_func f in
          let live = Vliw_analysis.Liveness.compute cfg in
          List.iter
            (fun blk ->
              let live_out =
                Vliw_analysis.Liveness.live_out live
                  (Vliw_analysis.Cfg.block_index cfg (Block.label blk))
              in
              let objects_of = Partition.Methods.objects_of ctx in
              let s =
                LS.schedule_block ~machine ~assign:c.MI.cassign
                  ~move_routes:c.MI.move_routes ~objects_of ~live_out blk
              in
              let lb =
                LS.lower_bound ~machine ~assign:c.MI.cassign
                  ~move_routes:c.MI.move_routes ~objects_of ~live_out blk
              in
              if LS.length s < lb then
                Alcotest.failf "%s/%s: schedule %d below lower bound %d" name
                  (Label.to_string (Block.label blk))
                  (LS.length s) lb)
            (Func.blocks f))
        (Prog.funcs c.MI.cprog))
    [ "rawcaudio"; "fir"; "mpeg2dec" ]

(* ------------------------------------------------------------------ *)
(* Move insertion + simulation on random programs                      *)

let prop_random_homes_preserve_semantics =
  Helpers.qcheck ~count:40
    "random object homes: clustered program preserves semantics and the \
     simulator agrees with the static model"
    (fun seed ->
      let src = Gen_minic.gen_program_with_seed seed in
      let prog = Minic.compile src in
      let input = Gen_minic.input in
      let reference = Vliw_interp.Interp.run prog ~input in
      let ctx =
        Partition.Methods.make_context ~machine ~prog
          ~profile:reference.Vliw_interp.Interp.profile ()
      in
      (* derive homes from the seed *)
      let st = Random.State.make [| seed * 7 + 1 |] in
      let homes =
        List.concat_map
          (fun (g : Partition.Merge.group) ->
            let c = Random.State.int st 2 in
            List.map (fun o -> (o, c)) g.Partition.Merge.objects)
          (Partition.Merge.data_groups ctx.Partition.Methods.merge)
      in
      let o =
        Partition.Methods.clustered_with_homes ctx ~method_name:"random"
          ~rhop_runs:1 homes
      in
      let report = Partition.Methods.evaluate ctx o in
      let re =
        Vliw_interp.Interp.run o.Partition.Methods.clustered.MI.cprog ~input
      in
      let sim =
        Vliw_sched.Vliw_sim.run o.Partition.Methods.clustered ~machine
          ~objects_of:(Partition.Methods.objects_of ctx) ~input ()
      in
      Helpers.equal_outputs re.Vliw_interp.Interp.outputs
        reference.Vliw_interp.Interp.outputs
      && Helpers.equal_outputs sim.Vliw_sched.Vliw_sim.outputs
           reference.Vliw_interp.Interp.outputs
      && sim.Vliw_sched.Vliw_sim.cycles
         = report.Vliw_sched.Perf.total_cycles
      && sim.Vliw_sched.Vliw_sim.dynamic_moves
         = report.Vliw_sched.Perf.dynamic_moves)
    Gen_minic.arbitrary_program

let test_occupancy () =
  let b =
    block_of
      [
        Op.Load { dst = r 0; base = Op.Imm 0x1000; offset = Op.Imm 0 };
        Op.Ibin (Op.Add, r 1, Op.Reg (r 0), Op.Imm 1);
        Op.Ret None;
      ]
  in
  let s =
    LS.schedule_block ~machine ~assign:(all_on 0 b)
      ~move_routes:(Hashtbl.create 0) b
  in
  let occ = Vliw_sched.Occupancy.of_schedule ~machine s in
  Alcotest.(check int) "one load issued" 1
    occ.Vliw_sched.Occupancy.fu_issues.(0).(Vliw_machine.fu_kind_index
                                              Vliw_machine.FU_memory);
  Alcotest.(check int) "nothing on cluster 1" 0
    (Array.fold_left ( + ) 0 occ.Vliw_sched.Occupancy.fu_issues.(1));
  let shares = Vliw_sched.Occupancy.cluster_shares occ in
  Alcotest.(check bool) "cluster 0 does all the work" true
    (shares.(0) = 1.0 && shares.(1) = 0.0);
  (* weighted accumulation doubles the counts *)
  let acc = Vliw_sched.Occupancy.accumulate occ ~weight:2 None in
  Alcotest.(check int) "weighted issues" 2
    acc.Vliw_sched.Occupancy.fu_issues.(0).(Vliw_machine.fu_kind_index
                                              Vliw_machine.FU_memory)

let test_move_insert_rejects_moves () =
  let b =
    block_of [ Op.Move { dst = r 1; src = r 0 }; Op.Ret None ]
  in
  let f = Func.v ~name:"main" ~params:[] ~blocks:[ b ] ~reg_count:2 in
  let prog = Prog.v ~globals:[] ~funcs:[ f ] ~op_count:2 in
  let assign = A.create ~num_clusters:2 in
  Prog.iter_ops (fun op -> A.set_cluster assign ~op_id:(Op.id op) 0) prog;
  Alcotest.check_raises "already has moves"
    (Invalid_argument "Move_insert.apply: program already contains moves")
    (fun () -> ignore (MI.apply prog assign))

let test_assignment_invariants () =
  let assign = A.create ~num_clusters:2 in
  Alcotest.check_raises "cluster out of range"
    (Invalid_argument "Assignment.set_cluster: cluster out of range")
    (fun () -> A.set_cluster assign ~op_id:0 5)

let suite =
  [
    Alcotest.test_case "flow/anti/output edges" `Quick test_flow_and_anti_edges;
    Alcotest.test_case "memory edges and disambiguation" `Quick
      test_memory_edges;
    Alcotest.test_case "output ordering" `Quick test_out_ordering;
    Alcotest.test_case "heights and asap/alap" `Quick test_heights_and_asap;
    Alcotest.test_case "scheduler respects fu counts" `Quick
      test_scheduler_resources;
    Alcotest.test_case "scheduler exploits both clusters" `Quick
      test_scheduler_uses_both_clusters;
    Alcotest.test_case "scheduler respects latency" `Quick
      test_scheduler_latency_respected;
    Alcotest.test_case "bus bandwidth" `Quick test_bus_bandwidth;
    Alcotest.test_case "lower bounds on benchmarks" `Slow
      test_lower_bound_holds_on_benchmarks;
    prop_random_homes_preserve_semantics;
    Alcotest.test_case "occupancy statistics" `Quick test_occupancy;
    Alcotest.test_case "move insert rejects moves" `Quick
      test_move_insert_rejects_moves;
    Alcotest.test_case "assignment invariants" `Quick test_assignment_invariants;
  ]
