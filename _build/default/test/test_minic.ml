(** Frontend tests: lexer, parser, typechecker, lowering, unrolling. *)

let lex src =
  List.map fst (Minic.Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 6
    (List.length (lex "int x = 42 ;"));
  (match lex "0x10 3.5 1e3 a_b" with
  | [ Minic.Token.INT_LIT 16; FLOAT_LIT 3.5; FLOAT_LIT 1000.; IDENT "a_b"; EOF ]
    ->
      ()
  | _ -> Alcotest.fail "unexpected tokens");
  match lex "<<>><= >= == != && || & |" with
  | [ Minic.Token.SHL; SHR; LE; GE; EQ; NE; AMPAMP; BARBAR; AMP; BAR; EOF ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_comments () =
  Alcotest.(check int) "line comment" 1 (List.length (lex "// hi\n"));
  Alcotest.(check int) "block comment" 1 (List.length (lex "/* a\nb */"));
  Alcotest.check_raises "unterminated"
    (Minic.Lexer.Error ({ Minic.Token.line = 1; col = 8 }, "unterminated block comment"))
    (fun () -> ignore (lex "/* oops"))

let test_lexer_positions () =
  let toks = Minic.Lexer.tokenize "int\n  x;" in
  match toks with
  | [ (_, p1); (_, p2); (_, p3); _ ] ->
      Alcotest.(check int) "line 1" 1 p1.Minic.Token.line;
      Alcotest.(check int) "line 2" 2 p2.Minic.Token.line;
      Alcotest.(check int) "col 3" 3 p2.Minic.Token.col;
      Alcotest.(check int) "semi col" 4 p3.Minic.Token.col
  | _ -> Alcotest.fail "token shape"

let parses src =
  match Minic.parse src with _ -> true | exception Minic.Compile_error _ -> false

let test_parser_shapes () =
  Alcotest.(check bool) "global scalar" true (parses "int x = 3;");
  Alcotest.(check bool) "global array" true (parses "int a[4] = {1, 2, 3, 4};");
  Alcotest.(check bool) "function" true (parses "int f(int x) { return x; }");
  Alcotest.(check bool) "control" true
    (parses
       "void main() { for (int i = 0; i < 3; i = i + 1) { if (i > 1) { out(i); } } }");
  Alcotest.(check bool) "missing semi" false (parses "int x = 3");
  Alcotest.(check bool) "bad token" false (parses "int $ = 3;");
  Alcotest.(check bool) "unclosed brace" false (parses "void main() {")

let test_precedence () =
  (* 2 + 3 * 4 = 14, (2 + 3) * 4 = 20, shifts bind tighter than compare *)
  let prog = Helpers.compile
    "void main() { out(2 + 3 * 4); out((2 + 3) * 4); out(1 << 2 + 1); out(7 & 3 | 4); }" in
  Alcotest.(check (list int)) "values" [ 14; 20; 8; 7 ] (Helpers.int_outputs prog)

let test_short_circuit () =
  (* the right operand must not be evaluated: division by zero guarded *)
  let prog =
    Helpers.compile
      {|
int zero;
void main() {
  int x = 3;
  if (zero != 0 && (x / zero) > 0) { out(1); } else { out(2); }
  if (zero == 0 || (x / zero) > 0) { out(3); } else { out(4); }
}
|}
  in
  Alcotest.(check (list int)) "short circuit" [ 2; 3 ] (Helpers.int_outputs prog)

let typechecks src =
  match Minic.compile ~unroll:false src with
  | _ -> true
  | exception Minic.Compile_error _ -> false

let test_type_errors () =
  Alcotest.(check bool) "unknown var" false (typechecks "void main() { out(x); }");
  Alcotest.(check bool) "float to int" false
    (typechecks "void main() { int x = 1.5; }");
  Alcotest.(check bool) "int to float promotes" true
    (typechecks "void main() { float x = 1; outf(x); }");
  Alcotest.(check bool) "void misuse" false
    (typechecks "void f() { } void main() { int x = f(); }");
  Alcotest.(check bool) "arity" false
    (typechecks "int f(int a) { return a; } void main() { out(f(1, 2)); }");
  Alcotest.(check bool) "index non-pointer" false
    (typechecks "void main() { int x = 1; out(x[0]); }");
  Alcotest.(check bool) "assign to array" false
    (typechecks "int a[4]; void main() { a = 3; }");
  Alcotest.(check bool) "duplicate local" false
    (typechecks "void main() { int x = 1; int x = 2; }");
  Alcotest.(check bool) "shadow in inner scope ok" true
    (typechecks "void main() { int x = 1; if (x) { int x = 2; out(x); } }");
  Alcotest.(check bool) "reserved name" false
    (typechecks "int malloc(int n) { return n; } void main() { }");
  Alcotest.(check bool) "modulo on float" false
    (typechecks "void main() { float x = 1.0; outf(x % 2.0); }")

let test_pointer_types () =
  Alcotest.(check bool) "malloc into int*" true
    (typechecks "void main() { int *p = malloc(4); p[0] = 1; out(p[0]); }");
  Alcotest.(check bool) "malloc into float*" true
    (typechecks "void main() { float *p = malloc(4); p[0] = 1.5; outf(p[0]); }");
  Alcotest.(check bool) "pointer arithmetic" true
    (typechecks "int a[8]; void main() { int *p = a + 2; out(p[0]); }");
  Alcotest.(check bool) "pointer + pointer rejected" false
    (typechecks "int a[8]; void main() { int *p = a + a; }");
  Alcotest.(check bool) "pointer-to-pointer rejected" false
    (typechecks "void main() { int **p = malloc(4); }")

let test_globals_init () =
  let prog =
    Helpers.compile
      {|
int a[4] = {10, 20, 30, 40};
int partial[4] = {7};
int zero[3];
float f = 2.5;
void main() {
  out(a[0] + a[3]);
  out(partial[0] + partial[3]);
  out(zero[2]);
  outf(f);
}
|}
  in
  match (Helpers.run prog).Vliw_interp.Interp.outputs with
  | [ VInt 50; VInt 7; VInt 0; VFloat 2.5 ] -> ()
  | outs ->
      Alcotest.failf "bad outputs %a"
        Fmt.(list ~sep:sp Vliw_interp.Interp.pp_value)
        outs

let test_lowering_structure () =
  let prog =
    Helpers.compile "int g; void main() { g = 1 + 2; out(g); }"
  in
  Vliw_ir.Validate.check prog;
  (* one store and one load of @g *)
  let stores = ref 0 and loads = ref 0 in
  Vliw_ir.Prog.iter_ops
    (fun op ->
      if Vliw_ir.Op.is_store op then incr stores;
      if Vliw_ir.Op.is_load op then incr loads)
    prog;
  Alcotest.(check int) "stores" 1 !stores;
  Alcotest.(check int) "loads" 1 !loads

let test_unroll_semantics () =
  let src =
    {|
int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
void main() {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { s = s + a[i] * i; }
  for (int i = 7; i >= 0; i = i - 1) { s = s + a[i]; }
  for (int i = 0; i <= 6; i = i + 2) { s = s * 2 + i; }
  out(s);
}
|}
  in
  let plain = Helpers.int_outputs (Helpers.compile ~unroll:false src) in
  let unrolled = Helpers.int_outputs (Helpers.compile ~unroll:true src) in
  Alcotest.(check (list int)) "same result" plain unrolled

let test_unroll_eliminates_loops () =
  let src =
    "int a[4]; void main() { for (int i = 0; i < 4; i = i + 1) { a[i] = i; } out(a[3]); }"
  in
  let unrolled = Helpers.compile ~unroll:true src in
  (* a fully unrolled main has no conditional branches *)
  let branches = ref 0 in
  Vliw_ir.Prog.iter_ops
    (fun op ->
      match Vliw_ir.Op.kind op with Vliw_ir.Op.Cbr _ -> incr branches | _ -> ())
    unrolled;
  Alcotest.(check int) "no branches left" 0 !branches

let test_unroll_respects_limits () =
  let src =
    "void main() { int s = 0; for (int i = 0; i < 1000; i = i + 1) { s = s + i; } out(s); }"
  in
  let prog = Helpers.compile ~unroll:true src in
  let branches = ref 0 in
  Vliw_ir.Prog.iter_ops
    (fun op ->
      match Vliw_ir.Op.kind op with Vliw_ir.Op.Cbr _ -> incr branches | _ -> ())
    prog;
  Alcotest.(check bool) "loop kept" true (!branches > 0);
  Alcotest.(check (list int)) "value" [ 499500 ] (Helpers.int_outputs prog)

let prop_generated_compile =
  Helpers.qcheck ~count:100 "generated programs compile and validate"
    (fun seed ->
      let src = Gen_minic.gen_program_with_seed seed in
      let prog = Minic.compile src in
      Vliw_ir.Validate.check prog;
      true)
    Gen_minic.arbitrary_program

let prop_unroll_preserves =
  Helpers.qcheck ~count:60 "unrolling preserves semantics"
    (fun seed ->
      let src = Gen_minic.gen_program_with_seed seed in
      let a =
        (Vliw_interp.Interp.run (Minic.compile ~unroll:false src)
           ~input:Gen_minic.input).outputs
      in
      let b =
        (Vliw_interp.Interp.run (Minic.compile ~unroll:true src)
           ~input:Gen_minic.input).outputs
      in
      Helpers.equal_outputs a b)
    Gen_minic.arbitrary_program

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "parser shapes" `Quick test_parser_shapes;
    Alcotest.test_case "operator precedence" `Quick test_precedence;
    Alcotest.test_case "short-circuit evaluation" `Quick test_short_circuit;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "pointer types" `Quick test_pointer_types;
    Alcotest.test_case "global initializers" `Quick test_globals_init;
    Alcotest.test_case "lowering structure" `Quick test_lowering_structure;
    Alcotest.test_case "unroll semantics" `Quick test_unroll_semantics;
    Alcotest.test_case "unroll eliminates small loops" `Quick
      test_unroll_eliminates_loops;
    Alcotest.test_case "unroll respects limits" `Quick test_unroll_respects_limits;
    prop_generated_compile;
    prop_unroll_preserves;
  ]
