(* Quickstart: compile a small kernel, partition data and computation
   with GDP, and compare against the unified-memory upper bound.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
int coeffs[16] = {1, -2, 3, -4, 5, -6, 7, -8, 8, -7, 6, -5, 4, -3, 2, -1};
int gain;

void main() {
  int *samples = malloc(64);
  int *filtered = malloc(64);

  gain = 3;
  for (int i = 0; i < 64; i = i + 1) { samples[i] = in(i % 16) * 7; }

  for (int i = 0; i < 64; i = i + 1) {
    int acc = 0;
    for (int t = 0; t < 16; t = t + 1) {
      acc = acc + coeffs[t] * samples[(i + t) % 64];
    }
    filtered[i] = acc * gain;
  }

  for (int i = 0; i < 64; i = i + 8) { out(filtered[i]); }
}
|}

let () =
  (* 1. wrap the source as a benchmark: a program plus its workload *)
  let bench =
    {
      Benchsuite.Bench_intf.name = "quickstart";
      description = "small FIR-style kernel";
      source;
      input = Array.init 16 (fun i -> i - 8);
      exhaustive_ok = true;
    }
  in

  (* 2. compile (with unrolling, scalar promotion, if-conversion) and
        profile on the reference interpreter *)
  let prepared = Gdp_core.Pipeline.prepare bench in
  Fmt.pr "compiled: %d operations, reference run took %d interpreter steps@."
    (Vliw_ir.Prog.num_ops prepared.Gdp_core.Pipeline.prog)
    prepared.Gdp_core.Pipeline.reference.Vliw_interp.Interp.steps;

  (* 3. build the partitioning context for the paper's 2-cluster machine
        with 5-cycle intercluster moves *)
  let machine = Vliw_machine.paper_machine ~move_latency:5 () in
  let ctx = Gdp_core.Pipeline.context ~machine prepared in
  Fmt.pr "@.data objects:@.%a@." Vliw_ir.Data.pp_table
    ctx.Partition.Methods.objtab;

  (* 4. run GDP and the unified-memory upper bound *)
  List.iter
    (fun method_ ->
      let e = Gdp_core.Pipeline.evaluate ctx method_ in
      Fmt.pr "@.=== %s ===@."
        e.Gdp_core.Pipeline.outcome.Partition.Methods.method_name;
      List.iter
        (fun (obj, c) ->
          Fmt.pr "  %a -> cluster %d@." Vliw_ir.Data.pp_obj obj c)
        (List.sort compare
           e.Gdp_core.Pipeline.outcome.Partition.Methods.obj_home);
      Fmt.pr "  %a@." Vliw_sched.Perf.pp e.Gdp_core.Pipeline.report;
      (* 5. every run is verified end to end: the clustered program and
            the cycle-level simulation reproduce the reference outputs *)
      match Gdp_core.Pipeline.verify prepared ctx e with
      | Ok () -> Fmt.pr "  verified: semantics and cycle model agree@."
      | Error m -> Fmt.pr "  VERIFICATION FAILED: %s@." m)
    [ Partition.Methods.Gdp; Partition.Methods.Unified ]
