examples/codec_pipeline.mli:
