examples/quickstart.ml: Array Benchsuite Fmt Gdp_core List Partition Vliw_interp Vliw_ir Vliw_machine Vliw_sched
