examples/explore_mappings.mli:
