examples/custom_machine.ml: Array Benchsuite Fmt Gdp_core List Partition Vliw_ir Vliw_machine Vliw_sched
