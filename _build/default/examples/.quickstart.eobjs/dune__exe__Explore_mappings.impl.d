examples/explore_mappings.ml: Array Benchsuite Fmt Gdp_core List Printf Sys
