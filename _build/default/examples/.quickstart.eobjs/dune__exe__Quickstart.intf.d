examples/quickstart.mli:
