examples/codec_pipeline.ml: Benchsuite Fmt Gdp_core List Partition Vliw_ir Vliw_machine Vliw_sched
