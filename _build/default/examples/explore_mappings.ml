(* Exhaustive exploration of data-object mappings (the paper's Figure 9
   experiment) on any small benchmark, with a CSV dump for plotting.

   Run with: dune exec examples/explore_mappings.exe [-- benchmark]
   (defaults to fir; try rawcaudio, rawdaudio, fsed, sobel, iirflt) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fir" in
  let bench = Benchsuite.Suite.find name in
  if not bench.Benchsuite.Bench_intf.exhaustive_ok then begin
    Fmt.epr "%s has too many object groups for exhaustive search@." name;
    exit 1
  end;
  let result = Gdp_core.Exhaustive.run ~move_latency:5 bench in
  Gdp_core.Exhaustive.render Fmt.stdout result;

  (* dump all points for external plotting *)
  let csv = Gdp_core.Exhaustive.to_csv result in
  let path = Printf.sprintf "fig9_%s.csv" name in
  let oc = open_out path in
  output_string oc csv;
  close_out oc;
  Fmt.pr "@.wrote %s (%d mappings)@." path
    (List.length result.Gdp_core.Exhaustive.points);

  (* how good are the methods' picks, as percentiles of the search space? *)
  let percentile (p : Gdp_core.Exhaustive.point) =
    let worse =
      List.length
        (List.filter
           (fun (q : Gdp_core.Exhaustive.point) -> q.cycles > p.cycles)
           result.Gdp_core.Exhaustive.points)
    in
    100. *. float worse
    /. float (List.length result.Gdp_core.Exhaustive.points)
  in
  Fmt.pr "GDP's mapping beats %.0f%% of all mappings@."
    (percentile result.Gdp_core.Exhaustive.gdp);
  Fmt.pr "Profile Max's mapping beats %.0f%% of all mappings@."
    (percentile result.Gdp_core.Exhaustive.profile_max)
