(* A full walk through the paper's pipeline on the ADPCM encoder
   (rawcaudio), the workload the paper uses for its exhaustive study:

   - inspect the object table and the access-pattern merge groups;
   - compare all four methods across the three intercluster latencies;
   - show the dynamic intercluster move traffic (Figure 10's metric).

   Run with: dune exec examples/codec_pipeline.exe *)

module Methods = Partition.Methods

let () =
  let bench = Benchsuite.Suite.find "rawcaudio" in
  let prepared = Gdp_core.Pipeline.prepare bench in
  Fmt.pr "benchmark: %s — %s@." bench.Benchsuite.Bench_intf.name
    bench.Benchsuite.Bench_intf.description;

  (* the object table and merge groups are machine-independent *)
  let ctx5 =
    Gdp_core.Pipeline.context
      ~machine:(Vliw_machine.paper_machine ~move_latency:5 ())
      prepared
  in
  Fmt.pr "@.object table:@.%a@." Vliw_ir.Data.pp_table ctx5.Methods.objtab;
  Fmt.pr "access-pattern merge groups (paper Section 3.3.1):@.%a@."
    Partition.Merge.pp ctx5.Methods.merge;

  (* performance across latencies *)
  Fmt.pr "@.cycles by method and intercluster move latency:@.";
  Fmt.pr "%-14s %10s %10s %10s@." "" "lat=1" "lat=5" "lat=10";
  let results =
    List.map
      (fun lat ->
        let machine = Vliw_machine.paper_machine ~move_latency:lat () in
        let ctx = Gdp_core.Pipeline.context ~machine prepared in
        (lat, List.map (fun m -> (m, Gdp_core.Pipeline.evaluate ctx m)) Methods.all))
      [ 1; 5; 10 ]
  in
  List.iter
    (fun m ->
      let cells =
        List.map
          (fun (_, per_method) ->
            let e = List.assoc m per_method in
            e.Gdp_core.Pipeline.report.Vliw_sched.Perf.total_cycles)
          results
      in
      Fmt.pr "%-14s %10d %10d %10d@." (Methods.name m) (List.nth cells 0)
        (List.nth cells 1) (List.nth cells 2))
    Methods.all;

  (* relative view + move traffic at the default latency *)
  Fmt.pr "@.at 5-cycle latency (relative to unified, higher is better):@.";
  let _, at5 = List.nth results 1 in
  let unified =
    (List.assoc Methods.Unified at5).Gdp_core.Pipeline.report
      .Vliw_sched.Perf.total_cycles
  in
  List.iter
    (fun (m, e) ->
      let r = e.Gdp_core.Pipeline.report in
      Fmt.pr "  %-12s %.3f   (%d dynamic intercluster moves)@."
        (Methods.name m)
        (float unified /. float r.Vliw_sched.Perf.total_cycles)
        r.Vliw_sched.Perf.dynamic_moves)
    at5;

  (* where did GDP put the data? *)
  let gdp = List.assoc Methods.Gdp at5 in
  Fmt.pr "@.GDP object placement:@.";
  List.iter
    (fun (obj, c) -> Fmt.pr "  %a -> cluster %d@." Vliw_ir.Data.pp_obj obj c)
    (List.sort compare gdp.Gdp_core.Pipeline.outcome.Methods.obj_home)
