(** Process-pool executor and the [Pipeline.Settings] API: pooled runs
    must be byte-identical to in-process runs (rows, gate rows, fuzz
    summaries), worker crashes must surface as retries then error rows,
    and settings must round-trip through their JSON form. *)

module Methods = Partition.Methods
module Pipeline = Gdp_core.Pipeline
module Settings = Gdp_core.Pipeline.Settings
module Experiments = Gdp_core.Experiments

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* a worker usable from both the inline and the forked path: doubles
   integer payloads, raises on ["boom"], exits the process on ["crash"]
   (pool mode only — tests using it must not take the inline path) *)
let arith_worker p =
  match Minijson.member "crash" p with
  | Some (Minijson.Bool true) -> Unix._exit 3
  | _ -> (
      match Option.bind (Minijson.member "boom" p) Minijson.to_string with
      | Some msg -> failwith msg
      | None ->
          let n =
            match Option.bind (Minijson.member "n" p) Minijson.to_int with
            | Some n -> n
            | None -> invalid_arg "no n"
          in
          Minijson.obj [ ("n2", Minijson.int (2 * n)) ])

let int_job ?(batch = "") n =
  Exec.job ~batch (Minijson.obj [ ("n", Minijson.int n) ])

let result_strings results =
  Array.to_list results
  |> List.map (function
       | Ok v -> "ok:" ^ Minijson.encode v
       | Error m -> "error:" ^ m)

(* ------------------------------------------------------------------ *)
(* Exec.map                                                            *)

let test_map_pool_matches_inline () =
  let js =
    List.concat_map
      (fun b -> List.init 4 (fun i -> int_job ~batch:b (Char.code b.[0] + i)))
      [ "a"; "b"; "c" ]
  in
  let seq = Exec.map ~jobs:1 ~worker:arith_worker js in
  let par = Exec.map ~jobs:4 ~worker:arith_worker js in
  Alcotest.(check (list string))
    "pooled results identical to inline" (result_strings seq)
    (result_strings par)

let test_map_job_error_identical () =
  let js =
    [
      int_job 1;
      Exec.job (Minijson.obj [ ("boom", Minijson.str "deliberate") ]);
      int_job 3;
    ]
  in
  let seq = Exec.map ~jobs:1 ~worker:arith_worker js in
  let par = Exec.map ~jobs:2 ~worker:arith_worker js in
  Alcotest.(check (list string))
    "raised exceptions become identical error rows" (result_strings seq)
    (result_strings par);
  match seq.(1) with
  | Error m ->
      Alcotest.(check bool) "message survives" true (contains m "deliberate")
  | Ok _ -> Alcotest.fail "expected an error row"

let test_map_crash_retried_then_reported () =
  Fault.reset_counts ();
  let crash = Exec.job (Minijson.obj [ ("crash", Minijson.bool true) ]) in
  let js = [ int_job 1; crash; int_job 3; int_job 4 ] in
  let results = Exec.map ~jobs:2 ~worker:arith_worker js in
  (match results.(1) with
  | Error m ->
      Alcotest.(check bool)
        ("crash row mentions the exit status: " ^ m)
        true
        (contains m "worker crashed (exit 3)");
      Alcotest.(check bool)
        ("crash row counts both attempts: " ^ m)
        true
        (contains m "after 2 attempt(s)")
  | Ok _ -> Alcotest.fail "crashing job must become an error row");
  List.iter
    (fun i ->
      match results.(i) with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "healthy job %d lost to the crash: %s" i m)
    [ 0; 2; 3 ];
  let c = Fault.counts () in
  Alcotest.(check bool)
    "each crash was noted as a detected fault" true
    (c.Fault.detected >= 2)

let test_map_telemetry_accounting () =
  let js = List.init 3 (int_job ~batch:"t") in
  let _, snap = Telemetry.capture (fun () ->
      ignore (Exec.map ~jobs:1 ~worker:arith_worker js))
  in
  Alcotest.(check (option int))
    "exec.jobs counts every job" (Some 3)
    (Telemetry.Snapshot.find_counter snap "exec.jobs");
  Alcotest.(check int)
    "one exec.job span per job" 3
    (List.length (Telemetry.Snapshot.spans_named snap "exec.job"))

let test_clamp_jobs () =
  Alcotest.(check int) "0 -> 1" 1 (Exec.clamp_jobs 0);
  Alcotest.(check int) "negative -> 1" 1 (Exec.clamp_jobs (-4));
  Alcotest.(check int) "identity in range" 7 (Exec.clamp_jobs 7);
  Alcotest.(check int) "capped at 64" 64 (Exec.clamp_jobs 1000)

(* ------------------------------------------------------------------ *)
(* Settings round-trip                                                 *)

let settings_gen =
  QCheck.Gen.(
    let* clusters = int_range 2 8 in
    let* move_latency = int_range 1 20 in
    let* method_ = oneofl Methods.all in
    let* unroll = bool and* promote = bool in
    let* simplify = bool and* if_convert = bool in
    let* merge_low_slack = option bool in
    let* rhop =
      option
        (let* xmove_weight = option (int_range 0 50) in
         let* coarsen_until = int_range 1 100 in
         let* max_passes = int_range 1 10 in
         return { Partition.Rhop.xmove_weight; coarsen_until; max_passes })
    in
    let* gdp =
      option
        (let* data_imbalance = float_range 1.0 4.0 in
         let* op_imbalance = float_range 1.0 4.0 in
         let* seed = int_range 0 1000 in
         return { Partition.Gdp.data_imbalance; op_imbalance; seed })
    in
    let* par_domains = int_range 1 8 in
    return
      {
        Settings.machine = Machine_spec.of_legacy ~clusters ~move_latency;
        method_;
        unroll;
        promote;
        simplify;
        if_convert;
        merge_low_slack;
        rhop;
        gdp;
        par_domains;
      })

let test_settings_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"of_json (to_json s) = Ok s"
       (QCheck.make settings_gen) (fun s ->
         match Settings.of_json (Settings.to_json s) with
         | Ok s' -> s' = s
         | Error m -> QCheck.Test.fail_reportf "rejected own encoding: %s" m))

let test_settings_rejections () =
  let expect_error ~substr doc =
    match Settings.of_json doc with
    | Ok _ -> Alcotest.failf "accepted a document missing %S" substr
    | Error m ->
        if not (contains m substr) then
          Alcotest.failf "expected %S in error %S" substr m
  in
  expect_error ~substr:"schema" (Minijson.obj [ ("clusters", Minijson.int 2) ]);
  let good = Settings.to_json (Settings.default Methods.Gdp) in
  (match good with
  | Minijson.Obj fields ->
      expect_error ~substr:"method"
        (Minijson.Obj
           (List.map
              (fun (k, v) ->
                if k = "method" then (k, Minijson.str "frobnicate") else (k, v))
              fields))
  | _ -> Alcotest.fail "to_json did not produce an object");
  Alcotest.(check bool)
    "default front end detected" true
    (Settings.default_front_end (Settings.default Methods.Gdp))

let test_settings_unknown_fields () =
  let expect_error ~substr doc =
    match Settings.of_json doc with
    | Ok _ -> Alcotest.failf "accepted a document with %S" substr
    | Error m ->
        if not (contains m substr) then
          Alcotest.failf "expected %S in error %S" substr m
  in
  (* a typo'd top-level option must fail loudly, naming the field *)
  (match Settings.to_json (Settings.default Methods.Gdp) with
  | Minijson.Obj fields ->
      expect_error ~substr:"colour"
        (Minijson.Obj (fields @ [ ("colour", Minijson.int 3) ]))
  | _ -> Alcotest.fail "to_json did not produce an object");
  (* ... and so must one buried in the rhop/gdp sub-objects *)
  let with_rhop =
    {
      (Settings.default Methods.Gdp) with
      rhop = Some Partition.Rhop.default_config;
    }
  in
  (match Settings.to_json with_rhop with
  | Minijson.Obj fields ->
      expect_error ~substr:"wiggle"
        (Minijson.Obj
           (List.map
              (fun (k, v) ->
                match (k, v) with
                | "rhop", Minijson.Obj fs ->
                    (k, Minijson.Obj (fs @ [ ("wiggle", Minijson.int 1) ]))
                | _ -> (k, v))
              fields))
  | _ -> Alcotest.fail "to_json did not produce an object")

let test_settings_version () =
  let doc_with_version v =
    match Settings.to_json (Settings.default Methods.Gdp) with
    | Minijson.Obj fields ->
        Minijson.Obj
          (List.map
             (fun (k, x) -> if k = "version" then (k, v) else (k, x))
             fields)
    | _ -> Alcotest.fail "to_json did not produce an object"
  in
  (* legacy-shaped machines ship as version-2 documents (bare
     clusters/move_latency ints, byte-compatible with old servers and
     their cache keys)... *)
  (match
     Minijson.member "version" (Settings.to_json (Settings.default Methods.Gdp))
   with
  | Some v ->
      Alcotest.(check (option int))
        "legacy shape emits version 2" (Some 2) (Minijson.to_int v)
  | None -> Alcotest.fail "no version field emitted");
  (* ...anything else needs the version-3 "machine" field *)
  (let ring8 =
     match Machine_spec.preset "ring8" with
     | Ok m -> m
     | Error e -> Alcotest.fail e
   in
   let s = { (Settings.default Methods.Gdp) with Settings.machine = ring8 } in
   (match Minijson.member "version" (Settings.to_json s) with
   | Some v ->
       Alcotest.(check (option int))
         "non-legacy machine emits the current version" (Some Settings.version)
         (Minijson.to_int v)
   | None -> Alcotest.fail "no version field emitted");
   match Settings.of_json (Settings.to_json s) with
   | Ok s' ->
       Alcotest.(check bool) "ring8 settings round-trip" true (s' = s)
   | Error m -> Alcotest.failf "rejected ring8 settings: %s" m);
  (* a document from before the field existed still parses (= v1) *)
  (match
     Settings.of_json
       (match Settings.to_json (Settings.default Methods.Gdp) with
       | Minijson.Obj fields ->
           Minijson.Obj (List.filter (fun (k, _) -> k <> "version") fields)
       | d -> d)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "rejected a version-less document: %s" m);
  (* a newer document is rejected with an upgrade hint *)
  (match Settings.of_json (doc_with_version (Minijson.int (Settings.version + 1))) with
  | Ok _ -> Alcotest.fail "accepted a too-new version"
  | Error m ->
      if not (contains m "newer") then
        Alcotest.failf "expected an upgrade hint in %S" m);
  match Settings.of_json (doc_with_version (Minijson.int 0)) with
  | Ok _ -> Alcotest.fail "accepted version 0"
  | Error m ->
      if not (contains m "invalid version") then
        Alcotest.failf "expected an invalid-version error in %S" m

(* ------------------------------------------------------------------ *)
(* The persistent pool                                                 *)

let drain_pool pool n =
  let rec go acc =
    if List.length acc >= n then acc
    else go (acc @ Exec.Pool.poll pool)
  in
  go []

let test_pool_submit_poll () =
  let pool =
    Exec.Pool.create ~jobs:2
      ~worker:(fun p ->
        match Minijson.to_int p with
        | Some n -> Minijson.int (n * n)
        | None -> failwith "bad payload")
      ()
  in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let tickets =
        List.init 5 (fun i -> (Exec.Pool.submit pool (Minijson.int i), i))
      in
      let completions = drain_pool pool 5 in
      Alcotest.(check int) "all jobs complete" 5 (List.length completions);
      Alcotest.(check int) "nothing pending" 0 (Exec.Pool.pending pool);
      List.iter
        (fun (c : Exec.Pool.completion) ->
          let i = List.assoc c.Exec.Pool.c_ticket tickets in
          match c.Exec.Pool.c_result with
          | Ok v ->
              Alcotest.(check (option int))
                "squared" (Some (i * i)) (Minijson.to_int v)
          | Error m -> Alcotest.failf "job %d failed: %s" i m)
        completions)

let test_pool_cancel () =
  (* one worker, slow jobs: the second stays queued long enough to cancel *)
  let pool =
    Exec.Pool.create ~jobs:1
      ~worker:(fun p ->
        ignore (Unix.select [] [] [] 0.2);
        p)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let t1 = Exec.Pool.submit pool (Minijson.int 1) in
      let t2 = Exec.Pool.submit pool (Minijson.int 2) in
      (* t1 was dispatched immediately; t2 is waiting for the worker *)
      Alcotest.(check int) "one queued" 1 (Exec.Pool.queued pool);
      (match Exec.Pool.cancel pool t2 with
      | `Cancelled_queued -> ()
      | `Cancelled_running -> Alcotest.fail "t2 should still be queued"
      | `Not_found -> Alcotest.fail "t2 unknown");
      (match Exec.Pool.cancel pool t1 with
      | `Cancelled_running -> ()
      | `Cancelled_queued -> Alcotest.fail "t1 should be running"
      | `Not_found -> Alcotest.fail "t1 unknown");
      Alcotest.(check int) "nothing pending after cancels" 0
        (Exec.Pool.pending pool);
      (* a cancelled pool still runs new jobs (worker was respawned) *)
      let t3 = Exec.Pool.submit pool (Minijson.int 3) in
      let cs = drain_pool pool 1 in
      match cs with
      | [ { Exec.Pool.c_ticket; c_result = Ok v } ] ->
          Alcotest.(check int) "ticket" t3 c_ticket;
          Alcotest.(check (option int)) "value" (Some 3) (Minijson.to_int v)
      | _ -> Alcotest.fail "expected exactly the third job's completion")

let test_pool_poison_pill () =
  let pool =
    Exec.Pool.create ~jobs:2 ~max_retries:10 ~poison_threshold:3
      ~retry_backoff:0.005 ~respawn_backoff:0.005 ~backoff_seed:3
      ~worker:arith_worker ()
  in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let crash = Minijson.obj [ ("crash", Minijson.bool true) ] in
      (* a job that kills every worker it touches must be failed with a
         diagnostic after [poison_threshold] crashes, not crash-loop *)
      ignore (Exec.Pool.submit pool ~batch:"pp" crash);
      (match drain_pool pool 1 with
      | [ { Exec.Pool.c_result = Error m; _ } ] ->
          Alcotest.(check bool)
            ("diagnostic names the poison pill: " ^ m)
            true
            (contains m "poison-pill")
      | _ -> Alcotest.fail "expected exactly one poisoned completion");
      let h = Exec.Pool.health pool in
      Alcotest.(check int) "one poisoned batch" 1 h.Exec.Pool.h_poisoned;
      Alcotest.(check bool)
        "ledger crossed the threshold" true
        (h.Exec.Pool.h_crashes >= 3);
      Alcotest.(check (list string))
        "batch named" [ "pp" ]
        (Exec.Pool.poisoned_batches pool);
      (* the same batch now fails fast, without touching a worker *)
      ignore (Exec.Pool.submit pool ~batch:"pp" (Minijson.int 1));
      (match drain_pool pool 1 with
      | [ { Exec.Pool.c_result = Error m; _ } ] ->
          Alcotest.(check bool)
            "resubmission fails fast" true
            (contains m "poison-pill")
      | _ -> Alcotest.fail "expected a fast failure");
      (* the pool healed: other batches still compute *)
      ignore (Exec.Pool.submit pool ~batch:"ok" (Minijson.obj [ ("n", Minijson.int 21) ]));
      match drain_pool pool 1 with
      | [ { Exec.Pool.c_result = Ok v; _ } ] ->
          Alcotest.(check (option int))
            "healthy batch unharmed" (Some 42)
            (Option.bind (Minijson.member "n2" v) Minijson.to_int)
      | _ -> Alcotest.fail "expected a healthy completion")

let test_pool_backoff_and_health () =
  let pool =
    Exec.Pool.create ~jobs:1 ~max_retries:3 ~retry_backoff:0.005
      ~respawn_backoff:0.005 ~backoff_seed:42 ~worker:arith_worker ()
  in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      ignore
        (Exec.Pool.submit pool ~batch:"bk"
           (Minijson.obj [ ("crash", Minijson.bool true) ]));
      (match drain_pool pool 1 with
      | [ { Exec.Pool.c_result = Error m; _ } ] ->
          Alcotest.(check bool)
            ("crash row counts all attempts: " ^ m)
            true
            (contains m "after 4 attempt(s)")
      | _ -> Alcotest.fail "expected one failed completion");
      (* three retries with exponential backoff (jitter is [0.5,1.5)):
         the delays sum to at least ~base/2 + base + 2*base, so the
         whole run cannot be instantaneous *)
      Alcotest.(check bool)
        "retries were delayed, not hot-looped" true
        (Unix.gettimeofday () -. t0 >= 0.012);
      let h = Exec.Pool.health pool in
      Alcotest.(check int) "one worker configured" 1 h.Exec.Pool.h_workers;
      Alcotest.(check int) "four crashes" 4 h.Exec.Pool.h_crashes;
      (* the final crash's respawn may still be deferred behind its
         backoff here, so only the first three are guaranteed *)
      Alcotest.(check bool) "respawns counted" true (h.Exec.Pool.h_respawns >= 3);
      (* the slot respawned: the pool still works *)
      ignore (Exec.Pool.submit pool (Minijson.obj [ ("n", Minijson.int 4) ]));
      (match drain_pool pool 1 with
      | [ { Exec.Pool.c_result = Ok _; _ } ] -> ()
      | _ -> Alcotest.fail "pool did not heal");
      Alcotest.(check int)
        "slot alive again" 1 (Exec.Pool.health pool).Exec.Pool.h_alive)

let test_pool_chaos_kill () =
  let pool =
    Exec.Pool.create ~jobs:1 ~max_retries:2 ~retry_backoff:0.005
      ~respawn_backoff:0.005
      ~worker:(fun p ->
        ignore (Unix.select [] [] [] 0.2);
        p)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool)
        "nothing to kill on an idle pool" false
        (Exec.Pool.chaos_kill pool 0);
      ignore (Exec.Pool.submit pool (Minijson.int 9));
      ignore (Exec.Pool.poll ~timeout:0.02 pool);
      Alcotest.(check bool)
        "killed the busy worker" true
        (Exec.Pool.chaos_kill pool 0);
      (* the SIGKILL flows through the ordinary crash machinery: the
         job is retried on a respawned worker and still completes *)
      match drain_pool pool 1 with
      | [ { Exec.Pool.c_result = Ok v; _ } ] ->
          Alcotest.(check (option int))
            "retried to completion" (Some 9) (Minijson.to_int v);
          let h = Exec.Pool.health pool in
          Alcotest.(check bool) "crash detected" true (h.Exec.Pool.h_crashes >= 1);
          Alcotest.(check bool) "respawned" true (h.Exec.Pool.h_respawns >= 1)
      | [ { Exec.Pool.c_result = Error m; _ } ] ->
          Alcotest.failf "job lost to the kill: %s" m
      | _ -> Alcotest.fail "expected exactly one completion")

(* ------------------------------------------------------------------ *)
(* Parallel experiment rows / bench JSON                               *)

let bench_json rows =
  Minijson.encode
    (Minijson.list (List.map Experiments.row_to_json rows))

let test_run_all_parallel_identity () =
  let benches = [ Benchsuite.Suite.find "fir"; Benchsuite.Suite.find "fsed" ] in
  let with_fresh_cache f =
    Experiments.clear_cache ();
    Fun.protect ~finally:Experiments.clear_cache f
  in
  let seq =
    with_fresh_cache (fun () ->
        bench_json (Experiments.run_all ~jobs:1 ~benches ~move_latency:5 ()))
  in
  let par =
    with_fresh_cache (fun () ->
        bench_json (Experiments.run_all ~jobs:4 ~benches ~move_latency:5 ()))
  in
  Alcotest.(check string) "-j 4 rows byte-identical to -j 1" seq par

let test_row_json_roundtrip () =
  Experiments.clear_cache ();
  Fun.protect ~finally:Experiments.clear_cache @@ fun () ->
  let rows =
    Experiments.run_all
      ~benches:[ Benchsuite.Suite.find "fir" ]
      ~move_latency:5 ()
  in
  List.iter
    (fun r ->
      match Experiments.row_of_json (Experiments.row_to_json r) with
      | Ok r' ->
          Alcotest.(check string)
            "row round-trips" (bench_json [ r ]) (bench_json [ r' ])
      | Error m -> Alcotest.failf "row_of_json rejected own encoding: %s" m)
    rows

let test_fuzz_parallel_identity () =
  let run jobs =
    let s = Gdp_fuzz.Fuzz.campaign ~jobs ~latencies:[ 5 ] ~seed:0 ~count:6 () in
    ( s.Gdp_fuzz.Fuzz.programs,
      List.map
        (fun ((m : Gdp_fuzz.Fuzz.mismatch), _) ->
          Fmt.str "%a" Gdp_fuzz.Fuzz.pp_mismatch m)
        s.Gdp_fuzz.Fuzz.mismatches )
  in
  let programs_seq, mm_seq = run 1 in
  let programs_par, mm_par = run 3 in
  Alcotest.(check int) "same program count" programs_seq programs_par;
  Alcotest.(check (list string)) "same mismatches" mm_seq mm_par

(* ------------------------------------------------------------------ *)
(* Pipeline.run / wrapper equivalence and cache clearers               *)

let test_run_wraps_evaluate () =
  let b = Benchsuite.Suite.find "fir" in
  let s = Settings.default Methods.Gdp in
  let p = Pipeline.prepare_with s b in
  let ctx = Pipeline.context ~machine:(Settings.machine s) p in
  let e = Pipeline.evaluate ctx Methods.Gdp in
  (match Pipeline.run ~prepared:p s with
  | Ok (Pipeline.Evaluated e') ->
      Alcotest.(check int)
        "same cycles as evaluate" e.Pipeline.report.Vliw_sched.Perf.total_cycles
        e'.Pipeline.report.Vliw_sched.Perf.total_cycles
  | Ok (Pipeline.Degraded _) -> Alcotest.fail "Plain mode cannot degrade"
  | Error m -> Alcotest.failf "run failed: %s" m);
  (match Pipeline.run s with
  | Error m ->
      Alcotest.(check bool)
        "missing input is a clean error" true
        (contains m "prepared" || contains m "ctx")
  | Ok _ -> Alcotest.fail "run without inputs must fail");
  match Pipeline.run ~prepared:p ~mode:(Pipeline.Robust { verify = true }) s with
  | Ok (Pipeline.Degraded r) ->
      Alcotest.(check string)
        "robust mode reaches the method" "gdp"
        (Methods.name r.Pipeline.used)
  | Ok (Pipeline.Evaluated _) -> Alcotest.fail "Robust mode must return Degraded"
  | Error m -> Alcotest.failf "robust run failed: %s" m

let test_keyed_clearer_idempotent () =
  let calls = ref 0 in
  Pipeline.register_cache_clearer ~key:"test.exec.count" (fun () -> incr calls);
  (* re-registration under the same key replaces, it does not stack *)
  Pipeline.register_cache_clearer ~key:"test.exec.count" (fun () -> incr calls);
  Pipeline.clear_caches ();
  Alcotest.(check int) "one call per clear, however often registered" 1 !calls;
  Pipeline.clear_caches ();
  Alcotest.(check int) "called once more on the next clear" 2 !calls;
  (* leave a no-op behind: the registry is global to the test binary *)
  Pipeline.register_cache_clearer ~key:"test.exec.count" (fun () -> ())

let suite =
  [
    Alcotest.test_case "map: pool matches inline" `Quick
      test_map_pool_matches_inline;
    Alcotest.test_case "map: job errors identical" `Quick
      test_map_job_error_identical;
    Alcotest.test_case "map: crash retried then reported" `Quick
      test_map_crash_retried_then_reported;
    Alcotest.test_case "map: telemetry accounting" `Quick
      test_map_telemetry_accounting;
    Alcotest.test_case "clamp_jobs" `Quick test_clamp_jobs;
    test_settings_roundtrip;
    Alcotest.test_case "settings: rejections" `Quick test_settings_rejections;
    Alcotest.test_case "settings: unknown fields rejected" `Quick
      test_settings_unknown_fields;
    Alcotest.test_case "settings: version handling" `Quick
      test_settings_version;
    Alcotest.test_case "pool: submit/poll" `Quick test_pool_submit_poll;
    Alcotest.test_case "pool: cancel queued and running" `Quick
      test_pool_cancel;
    Alcotest.test_case "pool: poison-pill ledger" `Quick test_pool_poison_pill;
    Alcotest.test_case "pool: backoff and health" `Quick
      test_pool_backoff_and_health;
    Alcotest.test_case "pool: chaos kill" `Quick test_pool_chaos_kill;
    Alcotest.test_case "experiments: -j 4 rows identical" `Slow
      test_run_all_parallel_identity;
    Alcotest.test_case "experiments: row JSON round-trip" `Quick
      test_row_json_roundtrip;
    Alcotest.test_case "fuzz: parallel campaign identical" `Slow
      test_fuzz_parallel_identity;
    Alcotest.test_case "pipeline: run wraps evaluate" `Quick
      test_run_wraps_evaluate;
    Alcotest.test_case "pipeline: keyed clearers idempotent" `Quick
      test_keyed_clearer_idempotent;
  ]
