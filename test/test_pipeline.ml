(** Integration tests: the full pipeline on real benchmarks, every
    method, with end-to-end verification (clustered interpretation,
    cycle simulation, model agreement), plus experiment-level sanity. *)

module Methods = Partition.Methods

let verify_bench ?(move_latency = 5) name =
  let b = Benchsuite.Suite.find name in
  let p = Gdp_core.Pipeline.prepare b in
  let machine = Vliw_machine.paper_machine ~move_latency () in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  List.iter
    (fun m ->
      let e = Gdp_core.Pipeline.evaluate ctx m in
      match Gdp_core.Pipeline.verify p ctx e with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s/%s: %s" name (Methods.name m) msg)
    Methods.all

let test_verify_small_suite () =
  List.iter verify_bench [ "rawcaudio"; "fir"; "fsed" ]

let test_verify_float_bench () = verify_bench "iirflt"

let test_verify_latency_1 () = verify_bench ~move_latency:1 "rawdaudio"
let test_verify_latency_10 () = verify_bench ~move_latency:10 "sobel"

let test_all_benchmarks_interpret () =
  List.iter
    (fun (b : Benchsuite.Bench_intf.t) ->
      let p = Gdp_core.Pipeline.prepare b in
      Alcotest.(check bool)
        (b.Benchsuite.Bench_intf.name ^ " produces output")
        true
        (p.Gdp_core.Pipeline.reference.Vliw_interp.Interp.outputs <> []))
    Benchsuite.Suite.all

let test_unified_is_strong_baseline () =
  (* partitioned-memory methods cannot beat unified by a large margin on
     average; allow the paper's observed >1 cases but bound them *)
  let b = Benchsuite.Suite.find "mpeg2dec" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context p in
  let cycles m =
    (Gdp_core.Pipeline.evaluate ctx m).Gdp_core.Pipeline.report
      .Vliw_sched.Perf.total_cycles
  in
  let unified = cycles Methods.Unified in
  List.iter
    (fun m ->
      let c = cycles m in
      Alcotest.(check bool)
        (Methods.name m ^ " within sane range")
        true
        (float c >= 0.65 *. float unified && float c <= 2.5 *. float unified))
    [ Methods.Gdp; Methods.Profile_max; Methods.Naive ]

let test_gdp_beats_naive_on_average () =
  let rows = Gdp_core.Experiments.run_all ~move_latency:5 () in
  let avg name =
    List.fold_left
      (fun acc r ->
        acc
        +. float (Gdp_core.Experiments.cycles_of r name)
           /. float (Gdp_core.Experiments.cycles_of r "unified"))
      0. rows
    /. float (List.length rows)
  in
  (* lower is better (cycles relative to unified) *)
  Alcotest.(check bool) "gdp < naive" true (avg "gdp" < avg "naive");
  Alcotest.(check bool) "gdp <= profile max (within 2%)" true
    (avg "gdp" <= avg "profile-max" +. 0.02)

let test_exhaustive_consistency () =
  let r = Gdp_core.Exhaustive.run (Benchsuite.Suite.find "fir") in
  (* best <= every point <= worst *)
  List.iter
    (fun (pt : Gdp_core.Exhaustive.point) ->
      Alcotest.(check bool) "within envelope" true
        (r.Gdp_core.Exhaustive.best.cycles <= pt.cycles
        && pt.cycles <= r.Gdp_core.Exhaustive.worst.cycles))
    r.Gdp_core.Exhaustive.points;
  (* balance is in [0, 1] *)
  List.iter
    (fun (pt : Gdp_core.Exhaustive.point) ->
      Alcotest.(check bool) "balance range" true
        (pt.balance >= 0. && pt.balance <= 1.0001))
    r.Gdp_core.Exhaustive.points;
  (* the GDP and PM mappings appear among the points *)
  Alcotest.(check bool) "gdp point valid" true
    (r.Gdp_core.Exhaustive.gdp.cycles >= r.Gdp_core.Exhaustive.best.cycles)

let test_compile_time_ratio () =
  (* Both data-partitioning methods pay for work Naive skips: Profile Max
     runs the detailed partitioner and its profiling schedule twice (the
     two-run structure itself is asserted by [test_rhop_runs_metadata]),
     and GDP runs the multilevel graph partitioner on top of its single
     detailed pass.  Either must show up as partition-stage time well
     above Naive's on a non-trivial benchmark. *)
  let r =
    Gdp_core.Experiments.compile_time
      ~benches:[ Benchsuite.Suite.find "mpeg2dec" ]
      ()
  in
  match r.Gdp_core.Experiments.ct_rows with
  | [ (_, times) ] ->
      let t n = List.assoc n times in
      Alcotest.(check bool) "pm slower than naive" true
        (t "profile-max" > t "naive" *. 1.2);
      Alcotest.(check bool) "gdp slower than naive" true
        (t "gdp" > t "naive" *. 1.2)
  | _ -> Alcotest.fail "unexpected rows"

let test_rhop_runs_metadata () =
  let b = Benchsuite.Suite.find "fir" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context p in
  let runs m = (Methods.run m ctx).Methods.rhop_runs in
  Alcotest.(check int) "gdp single run" 1 (runs Methods.Gdp);
  Alcotest.(check int) "profile max double run" 2 (runs Methods.Profile_max);
  Alcotest.(check int) "naive single run" 1 (runs Methods.Naive)

let test_four_cluster_machine () =
  let machine = Vliw_machine.scaled_machine ~clusters:4 ~move_latency:5 () in
  let b = Benchsuite.Suite.find "fir" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  List.iter
    (fun m ->
      let e = Gdp_core.Pipeline.evaluate ctx m in
      match Gdp_core.Pipeline.verify p ctx e with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "4 clusters %s: %s" (Methods.name m) msg)
    [ Methods.Gdp; Methods.Unified ]

let prop_methods_on_random_programs =
  Helpers.qcheck ~count:25 "all methods verified on random programs"
    (fun seed ->
      let src = Gen_minic.gen_program_with_seed seed in
      let bench =
        {
          Benchsuite.Bench_intf.name = "random";
          description = "generated";
          source = src;
          input = Gen_minic.input;
          exhaustive_ok = false;
        }
      in
      let p = Gdp_core.Pipeline.prepare bench in
      let ctx = Gdp_core.Pipeline.context p in
      List.for_all
        (fun m ->
          let e = Gdp_core.Pipeline.evaluate ctx m in
          match Gdp_core.Pipeline.verify p ctx e with
          | Ok () -> true
          | Error _ -> false)
        Methods.all)
    Gen_minic.arbitrary_program

let suite =
  [
    Alcotest.test_case "verify rawcaudio/fir/fsed, all methods" `Slow
      test_verify_small_suite;
    Alcotest.test_case "verify float benchmark" `Slow test_verify_float_bench;
    Alcotest.test_case "verify at 1-cycle latency" `Slow test_verify_latency_1;
    Alcotest.test_case "verify at 10-cycle latency" `Slow
      test_verify_latency_10;
    Alcotest.test_case "all benchmarks interpret" `Slow
      test_all_benchmarks_interpret;
    Alcotest.test_case "methods within sane range" `Slow
      test_unified_is_strong_baseline;
    Alcotest.test_case "gdp beats naive on average" `Slow
      test_gdp_beats_naive_on_average;
    Alcotest.test_case "exhaustive search consistency" `Slow
      test_exhaustive_consistency;
    Alcotest.test_case "compile-time ratio (section 4.5)" `Slow
      test_compile_time_ratio;
    Alcotest.test_case "rhop run counts" `Slow test_rhop_runs_metadata;
    Alcotest.test_case "four-cluster machine" `Slow test_four_cluster_machine;
    prop_methods_on_random_programs;
  ]
