(** Cycle-attribution tests: the accounting identity on random MiniC
    programs and on the paper suite, the per-object access split against
    the profiler's ground truth, and the metrics regression gate. *)

module Attrib = Vliw_sched.Attrib
module Sim = Vliw_sched.Vliw_sim
module Perf = Vliw_sched.Perf
module Methods = Partition.Methods
module Pipeline = Gdp_core.Pipeline
module Profile = Vliw_interp.Profile
module Explain = Gdp_report.Explain
module Regress = Gdp_report.Regress

let bench_of_source ~name source input : Benchsuite.Bench_intf.t =
  { name; description = ""; source; input; exhaustive_ok = false }

let sum = Array.fold_left ( + ) 0

(* ------------------------------------------------------------------ *)
(* The identity on random programs (QCheck over lib/fuzz's generator)  *)

(* For every method and latency: the dynamic account's categories sum
   exactly to the simulator's cycle count, the static roll-up agrees
   with the cycle model, and each object's local + remote accesses sum
   to the profiler's count for it. *)
let check_seed seed =
  let source = Gen_minic.gen_program_with_seed seed in
  let bench =
    bench_of_source ~name:(Printf.sprintf "fuzz-%d" seed) source
      Gen_minic.input
  in
  let prepared = Pipeline.prepare bench in
  let profile = prepared.Pipeline.reference.Vliw_interp.Interp.profile in
  let profiled = Profile.object_access_totals profile in
  let check_access what (totals : Attrib.totals) =
    (* every profiled object appears with a matching local/remote split,
       and the split never invents objects the profiler did not see *)
    List.iter
      (fun (obj, n) ->
        match List.assoc_opt obj totals.Attrib.t_obj_access with
        | None ->
            if n > 0 then
              QCheck.Test.fail_reportf "%s: %s missing from access table"
                what (Vliw_ir.Data.obj_to_string obj)
        | Some a ->
            let got = a.Attrib.acc_local + a.Attrib.acc_remote in
            if got <> n then
              QCheck.Test.fail_reportf "%s: %s local+remote %d <> profiled %d"
                what
                (Vliw_ir.Data.obj_to_string obj)
                got n)
      profiled;
    List.iter
      (fun (obj, _) ->
        if not (List.mem_assoc obj profiled) then
          QCheck.Test.fail_reportf "%s: %s not a profiled object" what
            (Vliw_ir.Data.obj_to_string obj))
      totals.Attrib.t_obj_access
  in
  List.iter
    (fun move_latency ->
      let machine = Vliw_machine.paper_machine ~move_latency () in
      let ctx = Pipeline.context ~machine prepared in
      let objects_of = Methods.objects_of ctx in
      List.iter
        (fun m ->
          let what =
            Printf.sprintf "seed %d, %s, latency %d" seed (Methods.name m)
              move_latency
          in
          let e = Pipeline.evaluate ctx m in
          let clustered = e.Pipeline.outcome.Methods.clustered in
          let sim =
            Sim.run ~account:true clustered ~machine ~objects_of
              ~input:Gen_minic.input ()
          in
          let dyn =
            match sim.Sim.account with
            | Some t -> t
            | None -> QCheck.Test.fail_reportf "%s: no account" what
          in
          if sum dyn.Attrib.t_categories <> sim.Sim.cycles then
            QCheck.Test.fail_reportf "%s: dynamic sum %d <> sim cycles %d"
              what
              (sum dyn.Attrib.t_categories)
              sim.Sim.cycles;
          (match Attrib.check_identity dyn with
          | None -> ()
          | Some msg -> QCheck.Test.fail_reportf "%s: %s" what msg);
          let st =
            Attrib.of_clustered ~machine clustered ~profile ~objects_of ()
          in
          if st.Attrib.t_cycles <> e.Pipeline.report.Perf.total_cycles then
            QCheck.Test.fail_reportf "%s: static cycles %d <> model %d" what
              st.Attrib.t_cycles e.Pipeline.report.Perf.total_cycles;
          (* static and dynamic accounts agree category by category: both
             are per-block accounts weighted by execution counts *)
          if st.Attrib.t_categories <> dyn.Attrib.t_categories then
            QCheck.Test.fail_reportf "%s: static/dynamic categories differ"
              what;
          check_access what dyn;
          check_access what st)
        Methods.all)
    [ 1; 5 ];
  true

let prop_identity =
  Helpers.qcheck ~count:12 "attribution identity on random programs"
    check_seed Gen_minic.arbitrary_program

(* ------------------------------------------------------------------ *)
(* The identity across the paper suite (fig7/fig8 configurations)      *)

(* [Explain.explain] raises if any method's attribution breaks the
   identity or disagrees with the cycle model, so walking the suite at
   the figure latencies is the full acceptance check. *)
let test_suite_identity () =
  List.iter
    (fun move_latency ->
      List.iter
        (fun (b : Benchsuite.Bench_intf.t) ->
          let e = Explain.explain_bench ~move_latency b in
          Alcotest.(check int)
            (Printf.sprintf "%s l%d: one row per method" b.name move_latency)
            (List.length Methods.all)
            (List.length e.Explain.ex_rows);
          List.iter
            (fun (r : Explain.method_row) ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s l%d: categories sum to cycles" b.name
                   r.Explain.mr_method move_latency)
                r.Explain.mr_cycles
                (sum r.Explain.mr_totals.Attrib.t_categories))
            e.Explain.ex_rows)
        Benchsuite.Suite.all)
    [ 1; 5; 10 ]

(* The explainer's placement tables are non-empty for real benchmarks:
   every method row attributes at least one object access. *)
let test_placements_non_empty () =
  let e = Explain.explain_bench ~move_latency:5 (Benchsuite.Suite.find "fir") in
  Alcotest.(check bool) "profiled accesses exist" true
    (e.Explain.ex_access_totals <> []);
  List.iter
    (fun (r : Explain.method_row) ->
      Alcotest.(check bool)
        (r.Explain.mr_method ^ ": access table non-empty")
        true
        (r.Explain.mr_totals.Attrib.t_obj_access <> []))
    e.Explain.ex_rows

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)

let with_temp_json es f =
  let path = Filename.temp_file "gdp_attrib" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let ppf = Format.formatter_of_out_channel oc in
      Explain.to_json ppf es;
      Format.pp_print_flush ppf ();
      close_out oc;
      f path)

let test_gate_roundtrip_and_pass () =
  let e = Explain.explain_bench ~move_latency:5 (Benchsuite.Suite.find "fir") in
  with_temp_json [ e ] @@ fun path ->
  match Regress.load path with
  | Error m -> Alcotest.fail m
  | Ok baseline ->
      Alcotest.(check int) "latency round-trips" 5 baseline.Regress.b_latency;
      Alcotest.(check int) "one row per method"
        (List.length Methods.all)
        (List.length baseline.Regress.b_rows);
      let current = Regress.rows_of [ e ] in
      Alcotest.(check int) "gate passes against itself" 0
        (List.length (Regress.check ~tolerance:0.0 ~baseline ~current))

let test_gate_detects_regression () =
  let e = Explain.explain_bench ~move_latency:5 (Benchsuite.Suite.find "fir") in
  with_temp_json [ e ] @@ fun path ->
  match Regress.load path with
  | Error m -> Alcotest.fail m
  | Ok baseline ->
      (* shrink the baseline cycles by 10%: the fresh run now reads as a
         >= 10% regression, beyond the 2% default tolerance *)
      let lowered =
        {
          baseline with
          Regress.b_rows =
            List.map
              (fun (r : Regress.row) ->
                { r with Regress.rg_cycles = r.Regress.rg_cycles * 9 / 10 })
              baseline.Regress.b_rows;
        }
      in
      let current = Regress.rows_of [ e ] in
      let issues = Regress.check ~tolerance:2.0 ~baseline:lowered ~current in
      Alcotest.(check bool) "regression detected" true (issues <> []);
      List.iter
        (fun (i : Regress.issue) ->
          Alcotest.(check string) "cycles metric flagged" "cycles"
            i.Regress.i_metric)
        issues;
      (* a generous tolerance swallows the same delta *)
      Alcotest.(check int) "tolerance waives it" 0
        (List.length
           (Regress.check ~tolerance:1000.0 ~baseline:lowered ~current))

let test_gate_missing_row () =
  let e = Explain.explain_bench ~move_latency:5 (Benchsuite.Suite.find "fir") in
  with_temp_json [ e ] @@ fun path ->
  match Regress.load path with
  | Error m -> Alcotest.fail m
  | Ok baseline ->
      let current =
        List.filter
          (fun (r : Regress.row) -> r.Regress.rg_method <> "gdp")
          (Regress.rows_of [ e ])
      in
      let issues = Regress.check ~tolerance:2.0 ~baseline ~current in
      Alcotest.(check int) "one disappearance" 1 (List.length issues);
      (match issues with
      | [ i ] ->
          Alcotest.(check string) "method" "gdp" i.Regress.i_method;
          Alcotest.(check int) "marked missing" (-1) i.Regress.i_current
      | _ -> Alcotest.fail "expected exactly one issue");
      (* extra rows in the current run are not regressions *)
      Alcotest.(check int) "new rows are fine" 0
        (List.length
           (Regress.check ~tolerance:2.0 ~baseline
              ~current:
                (Regress.rows_of [ e ]
                @ [
                    {
                      Regress.rg_bench = "brand-new";
                      rg_method = "gdp";
                      rg_cycles = 1;
                      rg_moves = 0;
                      rg_categories = [];
                    };
                  ])))

let test_minijson_rejects_garbage () =
  List.iter
    (fun s ->
      match Minijson.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "1 2" ];
  match Minijson.parse "{\"a\": [1, 2.5, \"x\\n\"], \"b\": null}" with
  | Error m -> Alcotest.fail m
  | Ok doc ->
      let open Minijson in
      Alcotest.(check (option int)) "nested int" (Some 1)
        (Option.bind (member "a" doc) (fun l ->
             Option.bind (to_list l) (fun l ->
                 Option.bind (List.nth_opt l 0) to_int)))

let suite =
  [
    prop_identity;
    Alcotest.test_case "identity across the suite (fig7/fig8)" `Slow
      test_suite_identity;
    Alcotest.test_case "placement tables are non-empty" `Quick
      test_placements_non_empty;
    Alcotest.test_case "gate round-trips and passes on itself" `Quick
      test_gate_roundtrip_and_pass;
    Alcotest.test_case "gate detects a cycle regression" `Quick
      test_gate_detects_regression;
    Alcotest.test_case "gate flags disappearing rows only" `Quick
      test_gate_missing_row;
    Alcotest.test_case "minijson accepts JSON and rejects garbage" `Quick
      test_minijson_rejects_garbage;
  ]
