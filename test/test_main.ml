(* Test runner: one Alcotest section per library. *)

let () =
  Alcotest.run "gdp"
    [
      ("machine", Test_machine.suite);
      ("topology", Test_topology.suite);
      ("ir", Test_ir.suite);
      ("minic", Test_minic.suite);
      ("interp", Test_interp.suite);
      ("analysis", Test_analysis.suite);
      ("graphpart", Test_graphpart.suite);
      ("opt", Test_opt.suite);
      ("sched", Test_sched.suite);
      ("partition", Test_partition.suite);
      ("pipeline", Test_pipeline.suite);
      ("telemetry", Test_telemetry.suite);
      ("attrib", Test_attrib.suite);
      ("robust", Test_robust.suite);
      ("exec", Test_exec.suite);
      ("service", Test_service.suite);
      (* must stay last: these tests spawn domains, and once a process
         has ever created a domain, OCaml 5 forbids Unix.fork — which
         the exec and service suites rely on *)
      ("par", Test_par.suite);
    ]
