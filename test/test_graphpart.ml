(** Graph partitioner tests: construction, edge cut, balance, multilevel
    bisection, k-way, determinism — with qcheck properties on random
    graphs. *)

module G = Graphpart.Graph
module P = Graphpart.Partitioner

let simple_graph () =
  (* two 4-cliques joined by one light edge: the obvious bisection cuts
     only the bridge *)
  let weights = Array.init 8 (fun _ -> [| 1 |]) in
  let clique base =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if i < j then Some (base + i, base + j, 10) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  G.create ~ncon:1 ~weights ~edges:(clique 0 @ clique 4 @ [ (0, 4, 1) ])

let test_graph_basics () =
  let g = simple_graph () in
  Alcotest.(check int) "nodes" 8 (G.num_nodes g);
  Alcotest.(check int) "edges" 13 (G.num_edges g);
  Alcotest.(check int) "total weight" 8 (G.total_weight g 0)

let test_graph_merges_parallel_edges () =
  let g =
    G.create ~ncon:1
      ~weights:[| [| 1 |]; [| 1 |] |]
      ~edges:[ (0, 1, 2); (1, 0, 3) ]
  in
  Alcotest.(check int) "one edge" 1 (G.num_edges g);
  Alcotest.(check int) "summed weight" 5
    (G.edge_cut g [| 0; 1 |])

let test_graph_rejects () =
  Alcotest.check_raises "self edge" (Invalid_argument "Graph.create: self edge")
    (fun () ->
      ignore (G.create ~ncon:1 ~weights:[| [| 1 |] |] ~edges:[ (0, 0, 1) ]));
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph.create: edge endpoint out of range") (fun () ->
      ignore (G.create ~ncon:1 ~weights:[| [| 1 |] |] ~edges:[ (0, 3, 1) ]))

let test_bisect_cliques () =
  let g = simple_graph () in
  let part = P.bisect g in
  Alcotest.(check int) "cuts only the bridge" 1 (G.edge_cut g part);
  let w = G.part_weights g part ~nparts:2 0 in
  Alcotest.(check int) "balanced" 4 w.(0);
  Alcotest.(check int) "balanced" 4 w.(1)

let test_bisect_deterministic () =
  let g = simple_graph () in
  let p1 = P.bisect g and p2 = P.bisect g in
  Alcotest.(check (array int)) "same result" p1 p2

let test_kway () =
  (* four cliques in a ring; 4-way should isolate them *)
  let weights = Array.init 16 (fun _ -> [| 1 |]) in
  let clique base =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if i < j then Some (base + i, base + j, 10) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let bridges = [ (0, 4, 1); (4, 8, 1); (8, 12, 1); (12, 0, 1) ] in
  let g =
    G.create ~ncon:1 ~weights
      ~edges:(clique 0 @ clique 4 @ clique 8 @ clique 12 @ bridges)
  in
  let part = P.kway g ~nparts:4 in
  (* each clique uniform *)
  List.iter
    (fun base ->
      let p = part.(base) in
      List.iter
        (fun i -> Alcotest.(check int) "clique uniform" p part.(base + i))
        [ 1; 2; 3 ])
    [ 0; 4; 8; 12 ];
  (* all four parts used *)
  let used = Array.make 4 false in
  Array.iter (fun p -> used.(p) <- true) part;
  Alcotest.(check bool) "all parts used" true (Array.for_all Fun.id used)

let test_asymmetric_targets () =
  (* 10 unit-weight nodes, no edges; a 70/30 target must land ~7 on part 0 *)
  let weights = Array.init 10 (fun _ -> [| 1 |]) in
  let g = G.create ~ncon:1 ~weights ~edges:[] in
  let cfg =
    {
      (P.default_config ~ncon:1) with
      P.targets = Some [| 0.7 |];
      imbalance = [| 0.05 |];
    }
  in
  let part = P.bisect ~config:cfg g in
  let w = G.part_weights g part ~nparts:2 0 in
  Alcotest.(check bool) "part 0 gets the 70% share" true
    (w.(0) >= 6 && w.(0) <= 8)

let test_kway_rejects_non_power_of_two () =
  let g = simple_graph () in
  Alcotest.check_raises "nparts=3"
    (Invalid_argument "Partitioner.kway: nparts must be a positive power of two")
    (fun () -> ignore (P.kway g ~nparts:3))

(* ------------------------------------------------------------------ *)
(* Random graph properties                                             *)

let arbitrary_graph =
  let gen st =
    let n = 2 + Random.State.int st 40 in
    let ncon = 1 + Random.State.int st 2 in
    let weights =
      Array.init n (fun _ ->
          Array.init ncon (fun _ -> 1 + Random.State.int st 20))
    in
    let nedges = Random.State.int st (3 * n) in
    let edges =
      List.init nedges (fun _ ->
          let a = Random.State.int st n in
          let b = Random.State.int st n in
          (a, b, 1 + Random.State.int st 10))
      |> List.filter (fun (a, b, _) -> a <> b)
    in
    (n, ncon, weights, edges)
  in
  QCheck.make
    ~print:(fun (n, ncon, _, edges) ->
      Printf.sprintf "n=%d ncon=%d edges=%d" n ncon (List.length edges))
    gen

let prop_bisect_valid =
  Helpers.qcheck ~count:100 "bisection assigns every node to 0 or 1"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let part = P.bisect g in
      Array.length part = G.num_nodes g
      && Array.for_all (fun p -> p = 0 || p = 1) part)
    arbitrary_graph

let prop_bisect_balanced =
  Helpers.qcheck ~count:100
    "bisection is never worse than the cap plus one node (bin-packing \
     slack)"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let cfg = P.default_config ~ncon in
      let part = P.bisect ~config:cfg g in
      (* exact feasibility is a bin-packing question, so allow one
         heaviest-node of slack beyond the configured cap *)
      List.for_all
        (fun c ->
          let total = G.total_weight g c in
          let cap =
            max
              (int_of_float
                 (ceil ((1. +. cfg.P.imbalance.(c)) /. 2. *. float total)))
              ((total + 1) / 2)
          in
          let heaviest = ref 0 in
          for v = 0 to G.num_nodes g - 1 do
            heaviest := max !heaviest (G.node_weight g v c)
          done;
          let w = G.part_weights g part ~nparts:2 c in
          max w.(0) w.(1) <= cap + !heaviest)
        (List.init ncon Fun.id))
    arbitrary_graph

let prop_cut_nonnegative_and_bounded =
  Helpers.qcheck ~count:100 "edge cut is between 0 and the total edge weight"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let part = P.bisect g in
      let cut = G.edge_cut g part in
      let total =
        List.fold_left (fun acc (_, _, w) -> acc + w) 0 edges
      in
      cut >= 0 && cut <= total)
    arbitrary_graph

let prop_deterministic =
  Helpers.qcheck ~count:50 "bisection is deterministic"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      P.bisect g = P.bisect g)
    arbitrary_graph

(* An adjacency-list reference model of the CSR structure: merged
   symmetric edges as a (min, max) -> weight table plus sorted per-node
   neighbor lists, built with none of [Graph]'s machinery. *)
let reference_model n edges =
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a, b, w) ->
      let key = if a < b then (a, b) else (b, a) in
      Hashtbl.replace tbl key
        (w + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    edges;
  let adj = Array.make n [] in
  Hashtbl.iter
    (fun (a, b) w ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    tbl;
  (Array.map (List.sort compare) adj, tbl)

(* a partition of [n] nodes derived deterministically from the instance,
   so every random graph also exercises a non-trivial assignment *)
let model_part n edges =
  let salt = List.fold_left (fun a (x, y, w) -> a + x + y + w) 0 edges in
  Array.init n (fun i -> (i + salt) mod 2)

let prop_csr_matches_reference =
  Helpers.qcheck ~count:100
    "CSR neighbors/edge_cut/part_weights agree with an adjacency-list \
     reference"
    (fun (n, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let adj, tbl = reference_model n edges in
      let part = model_part n edges in
      let neighbors_ok =
        Array.for_all Fun.id
          (Array.init n (fun v ->
               let via_iter = ref [] in
               G.iter_neighbors g v (fun u w -> via_iter := (u, w) :: !via_iter);
               G.neighbors g v = adj.(v) && List.rev !via_iter = adj.(v)))
      in
      let ref_cut =
        Hashtbl.fold
          (fun (a, b) w acc -> if part.(a) <> part.(b) then acc + w else acc)
          tbl 0
      in
      let part_weights_ok =
        List.for_all
          (fun c ->
            let expect = Array.make 2 0 in
            Array.iteri
              (fun v p -> expect.(p) <- expect.(p) + weights.(v).(c))
              part;
            G.part_weights g part ~nparts:2 c = expect)
          (List.init ncon Fun.id)
      in
      neighbors_ok && G.edge_cut g part = ref_cut && part_weights_ok)
    arbitrary_graph

let prop_fm_never_worsens =
  Helpers.qcheck ~count:100
    "fm_refine never worsens the (infeasibility, cut) order"
    (fun (n, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let cfg = P.default_config ~ncon in
      let part = model_part n edges in
      let before = P.evaluate cfg g part in
      P.fm_refine cfg g part;
      let after = P.evaluate cfg g part in
      Array.for_all (fun p -> p = 0 || p = 1) part && after <= before)
    arbitrary_graph

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "parallel edges merge" `Quick
      test_graph_merges_parallel_edges;
    Alcotest.test_case "invalid graphs rejected" `Quick test_graph_rejects;
    Alcotest.test_case "bisect cliques" `Quick test_bisect_cliques;
    Alcotest.test_case "bisect deterministic" `Quick test_bisect_deterministic;
    Alcotest.test_case "kway ring of cliques" `Quick test_kway;
    Alcotest.test_case "asymmetric balance targets" `Quick
      test_asymmetric_targets;
    Alcotest.test_case "kway validates nparts" `Quick
      test_kway_rejects_non_power_of_two;
    prop_bisect_valid;
    prop_bisect_balanced;
    prop_cut_nonnegative_and_bounded;
    prop_deterministic;
    prop_csr_matches_reference;
    prop_fm_never_worsens;
  ]
