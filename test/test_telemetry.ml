(** Telemetry subsystem tests: span nesting/ordering invariants,
    disabled-mode no-op behavior, counter monotonicity, and a property
    test that the Chrome trace-event exporter always emits parseable
    JSON whose events are complete (ph "X") — plus an integration check
    that the instrumented pipeline records every stage span. *)

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser — the repo deliberately has no JSON dependency,
   so the exporter is validated against this independent reader.       *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | None -> fail "unterminated escape"
            | Some c ->
                advance ();
                (match c with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'n' -> Buffer.add_char buf '\n'
                | 'r' -> Buffer.add_char buf '\r'
                | 't' -> Buffer.add_char buf '\t'
                | 'u' ->
                    if !pos + 4 > n then fail "truncated \\u escape";
                    let hex = String.sub s !pos 4 in
                    pos := !pos + 4;
                    let code =
                      try int_of_string ("0x" ^ hex)
                      with Failure _ -> fail "bad \\u escape"
                    in
                    if code < 0x100 then Buffer.add_char buf (Char.chr code)
                    else Buffer.add_char buf '?'
                | _ -> fail "unknown escape");
                go ())
        | Some c ->
            if Char.code c < 0x20 then fail "raw control char in string";
            advance ();
            Buffer.add_char buf c;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let numchar = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> numchar c | None -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

(** Deterministic clock: every reading advances by 1us. *)
let with_fake_clock f =
  let t = ref 0. in
  Telemetry.set_clock
    (Some
       (fun () ->
         t := !t +. 1.;
         !t));
  Fun.protect ~finally:(fun () -> Telemetry.set_clock None) f

let render_chrome snap =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Telemetry.Sink.chrome_trace ppf snap;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let span_names (snap : Telemetry.snapshot) =
  List.map (fun (sp : Telemetry.span) -> sp.Telemetry.name) snap.Telemetry.spans

(* ------------------------------------------------------------------ *)
(* Span invariants                                                     *)

let test_nesting_and_ordering () =
  with_fake_clock @@ fun () ->
  let (), snap =
    Telemetry.capture (fun () ->
        Telemetry.with_span "a" (fun () ->
            Telemetry.with_span "b" (fun () -> ());
            Telemetry.with_span "c" (fun () -> ())))
  in
  match snap.Telemetry.spans with
  | [ a; b; c ] ->
      Alcotest.(check (list string)) "start order" [ "a"; "b"; "c" ]
        (span_names snap);
      Alcotest.(check bool) "a is a root" true (a.Telemetry.parent = None);
      Alcotest.(check bool) "b under a" true
        (b.Telemetry.parent = Some a.Telemetry.id);
      Alcotest.(check bool) "c under a" true
        (c.Telemetry.parent = Some a.Telemetry.id);
      let ends (sp : Telemetry.span) =
        sp.Telemetry.start_us +. sp.Telemetry.dur_us
      in
      Alcotest.(check bool) "b contained in a" true
        (a.Telemetry.start_us < b.Telemetry.start_us && ends b < ends a);
      Alcotest.(check bool) "c contained in a" true
        (a.Telemetry.start_us < c.Telemetry.start_us && ends c < ends a);
      Alcotest.(check bool) "siblings do not overlap" true
        (ends b < c.Telemetry.start_us);
      Alcotest.(check bool) "children listed under a" true
        (List.map
           (fun (sp : Telemetry.span) -> sp.Telemetry.name)
           (Telemetry.Snapshot.children snap a)
        = [ "b"; "c" ])
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_closes_on_exception () =
  let (), snap =
    Telemetry.capture (fun () ->
        try
          Telemetry.with_span "outer" (fun () ->
              Telemetry.with_span "inner" (fun () -> failwith "boom"))
        with Failure _ -> ())
  in
  Alcotest.(check (list string))
    "both spans recorded" [ "outer"; "inner" ] (span_names snap);
  match snap.Telemetry.spans with
  | [ outer; inner ] ->
      Alcotest.(check bool) "inner still nested" true
        (inner.Telemetry.parent = Some outer.Telemetry.id)
  | _ -> Alcotest.fail "expected 2 spans"

let test_timed_agrees_with_span () =
  with_fake_clock @@ fun () ->
  let (secs, snap) =
    Telemetry.capture (fun () -> snd (Telemetry.timed "work" (fun () -> ())))
  in
  Alcotest.(check bool) "span recorded" true
    (Telemetry.Snapshot.spans_named snap "work" <> []);
  (* the timed window encloses the span: 4 clock readings total *)
  Alcotest.(check (float 1e-9)) "elapsed from the same clock" 3e-6 secs

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                       *)

let test_disabled_is_noop () =
  Telemetry.disable ();
  Telemetry.reset ();
  let ran = ref false in
  let r = Telemetry.with_span "ghost" (fun () -> ran := true; 41 + 1) in
  Telemetry.incr "ghost.counter";
  Telemetry.set_gauge "ghost.gauge" 1.0;
  Telemetry.span_arg "k" "v";
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "result passed through" 42 r;
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no spans" 0 (List.length snap.Telemetry.spans);
  Alcotest.(check int) "no metrics" 0 (List.length snap.Telemetry.metrics);
  Alcotest.(check int) "counter reads 0" 0
    (Telemetry.counter_value "ghost.counter")

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_monotonicity () =
  let (), snap =
    Telemetry.capture (fun () ->
        Telemetry.incr "c";
        Telemetry.incr "c" ~by:4;
        Telemetry.incr "c" ~by:0;
        Alcotest.(check int) "accumulates" 5 (Telemetry.counter_value "c");
        (match Telemetry.incr "c" ~by:(-1) with
        | () -> Alcotest.fail "negative increment accepted"
        | exception Invalid_argument _ -> ());
        Alcotest.(check int) "unchanged after rejected decrement" 5
          (Telemetry.counter_value "c");
        Telemetry.set_gauge "g" 2.5;
        Telemetry.set_gauge "g" 1.5;
        (match Telemetry.set_gauge "c" 0. with
        | () -> Alcotest.fail "gauge write to a counter accepted"
        | exception Invalid_argument _ -> ());
        match Telemetry.incr "g" with
        | () -> Alcotest.fail "counter increment of a gauge accepted"
        | exception Invalid_argument _ -> ())
  in
  Alcotest.(check (option int)) "counter in snapshot" (Some 5)
    (Telemetry.Snapshot.find_counter snap "c");
  Alcotest.(check (option (float 1e-9))) "gauge last-write-wins" (Some 1.5)
    (Telemetry.Snapshot.find_gauge snap "g")

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let test_histogram_buckets () =
  let (), snap =
    Telemetry.capture (fun () ->
        List.iter (Telemetry.observe "lat") [ 0.5; 1.0; 3.0; 1000.0 ])
  in
  match Telemetry.Snapshot.find_hist snap "lat" with
  | None -> Alcotest.fail "histogram not in snapshot"
  | Some h ->
      Alcotest.(check int) "count" 4 h.Telemetry.h_count;
      Alcotest.(check (float 1e-9)) "sum" 1004.5 h.Telemetry.h_sum;
      Alcotest.(check (float 1e-9)) "min" 0.5 h.Telemetry.h_min;
      Alcotest.(check (float 1e-9)) "max" 1000.0 h.Telemetry.h_max;
      Alcotest.(check int) "bucket total equals count" h.Telemetry.h_count
        (Array.fold_left ( + ) 0 h.Telemetry.h_buckets);
      (* every observation landed in the bucket whose bounds contain it *)
      List.iter
        (fun v ->
          let hit = ref false in
          Array.iteri
            (fun i n ->
              let lo, hi = Telemetry.hist_bucket_bounds i in
              if n > 0 && v >= lo && v < hi then hit := true)
            h.Telemetry.h_buckets;
          Alcotest.(check bool)
            (Printf.sprintf "%.1f in a covering bucket" v)
            true !hit)
        [ 0.5; 1.0; 3.0; 1000.0 ]

let test_histogram_bounds_partition () =
  (* buckets tile [0, inf): contiguous, increasing, first starts at 0 *)
  let prev_hi = ref 0. in
  for i = 0 to Telemetry.hist_buckets - 1 do
    let lo, hi = Telemetry.hist_bucket_bounds i in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "bucket %d contiguous" i)
      !prev_hi lo;
    Alcotest.(check bool) "bounds ordered" true (lo < hi);
    prev_hi := hi
  done;
  Alcotest.(check bool) "last bucket open-ended" true
    (snd (Telemetry.hist_bucket_bounds (Telemetry.hist_buckets - 1))
    = infinity)

let test_observe_disabled_is_noop () =
  Telemetry.disable ();
  Telemetry.reset ();
  Telemetry.observe "ghost.hist" 5.0;
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no histograms" 0 (List.length snap.Telemetry.hists)

let test_span_durations_observed () =
  with_fake_clock @@ fun () ->
  let (), snap =
    Telemetry.capture (fun () ->
        Telemetry.with_span "work" (fun () -> ());
        Telemetry.with_span "work" (fun () -> ()))
  in
  match Telemetry.Snapshot.find_hist snap "span_us:work" with
  | None -> Alcotest.fail "span duration histogram missing"
  | Some h -> Alcotest.(check int) "one observation per span" 2 h.Telemetry.h_count

let test_histograms_csv_and_summary_file () =
  let (), snap =
    Telemetry.capture (fun () ->
        Telemetry.observe "prep.us" 2.0;
        Telemetry.observe "prep.us" 2.5;
        Telemetry.incr "boot.count")
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Telemetry.Sink.histograms_csv ppf snap;
  Format.pp_print_flush ppf ();
  let lines =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  (match lines with
  | header :: rows ->
      Alcotest.(check string)
        "csv header" "name,bucket_lo,bucket_hi,count" header;
      Alcotest.(check bool) "one non-empty bucket row" true
        (List.exists
           (fun r ->
             String.length r >= 8 && String.sub r 0 8 = "prep.us,")
           rows)
  | [] -> Alcotest.fail "empty csv");
  let path = Filename.temp_file "gdp_stats" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.Sink.write_summary path snap;
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let contains needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "summary lists the counter" true
        (contains "boot.count");
      Alcotest.(check bool) "summary lists the histogram" true
        (contains "prep.us"))

(* ------------------------------------------------------------------ *)
(* Chrome trace exporter property                                      *)

(** Random span forests of bounded size. *)
type tree = Node of string * tree list

let tree_gen =
  QCheck.Gen.(
    let name_gen =
      oneof
        [
          string_size ~gen:printable (int_range 0 12);
          string_size ~gen:char (int_range 0 8);
        ]
    in
    sized
    @@ fix (fun self size ->
           map2
             (fun name children -> Node (name, children))
             name_gen
             (if size <= 0 then return []
              else list_size (int_range 0 3) (self (size / 4)))))

let forest_arb =
  QCheck.make
    ~print:(fun forest ->
      let rec pp (Node (name, children)) =
        Printf.sprintf "%S[%s]" name (String.concat ";" (List.map pp children))
      in
      String.concat ";" (List.map pp forest))
    QCheck.Gen.(list_size (int_range 0 4) tree_gen)

let rec replay (Node (name, children)) =
  Telemetry.with_span name (fun () -> List.iter replay children)

let rec count_nodes (Node (_, children)) =
  1 + List.fold_left (fun a t -> a + count_nodes t) 0 children

let chrome_trace_parses =
  QCheck.Test.make ~name:"chrome trace is parseable JSON, all events complete"
    ~count:100 forest_arb (fun forest ->
      let (), snap =
        with_fake_clock (fun () ->
            Telemetry.capture (fun () ->
                List.iter replay forest;
                Telemetry.incr "events.total"
                  ~by:(List.fold_left (fun a t -> a + count_nodes t) 0 forest);
                Telemetry.set_gauge "a \"quoted\"\ngauge" 1.25))
      in
      let json = Json.parse (render_chrome snap) in
      let events =
        match Json.member "traceEvents" json with
        | Some (Json.Arr evs) -> evs
        | _ -> QCheck.Test.fail_report "no traceEvents array"
      in
      let expected_spans =
        List.fold_left (fun a t -> a + count_nodes t) 0 forest
      in
      let phase e =
        match Json.member "ph" e with
        | Some (Json.Str p) -> p
        | _ -> QCheck.Test.fail_report "event without ph"
      in
      let xs = List.filter (fun e -> phase e = "X") events in
      let begins = List.filter (fun e -> phase e = "B") events in
      let ends = List.filter (fun e -> phase e = "E") events in
      (* every duration event is complete ("X"), or — if an exporter ever
         switches to B/E pairs — they must match up *)
      if List.length begins <> List.length ends then
        QCheck.Test.fail_report "unmatched B/E events";
      if List.length xs + List.length begins <> expected_spans then
        QCheck.Test.fail_reportf "expected %d duration events, got %d"
          expected_spans
          (List.length xs + List.length begins);
      List.for_all
        (fun e ->
          match
            (Json.member "name" e, Json.member "ts" e, Json.member "dur" e)
          with
          | Some (Json.Str _), Some (Json.Num ts), Some (Json.Num dur) ->
              ts >= 0. && dur >= 0.
          | _ -> QCheck.Test.fail_report "X event missing name/ts/dur")
        xs)

let chrome_trace_roundtrips_names =
  QCheck.Test.make ~name:"chrome trace preserves span names exactly"
    ~count:100 forest_arb (fun forest ->
      let (), snap =
        with_fake_clock (fun () ->
            Telemetry.capture (fun () -> List.iter replay forest))
      in
      let json = Json.parse (render_chrome snap) in
      let events =
        match Json.member "traceEvents" json with
        | Some (Json.Arr evs) -> evs
        | _ -> QCheck.Test.fail_report "no traceEvents array"
      in
      let exported =
        List.filter_map
          (fun e ->
            match (Json.member "ph" e, Json.member "name" e) with
            | Some (Json.Str "X"), Some (Json.Str n) -> Some n
            | _ -> None)
          events
        |> List.sort compare
      in
      let recorded = List.sort compare (span_names snap) in
      exported = recorded)

(* ------------------------------------------------------------------ *)
(* Pipeline integration: every stage leaves a span                     *)

let test_pipeline_records_stage_spans () =
  let b = Benchsuite.Suite.find "fsed" in
  let (), snap =
    Telemetry.capture (fun () ->
        let p = Gdp_core.Pipeline.prepare b in
        let ctx = Gdp_core.Pipeline.context p in
        let e = Gdp_core.Pipeline.evaluate ctx Partition.Methods.Gdp in
        match Gdp_core.Pipeline.verify p ctx e with
        | Ok () -> ()
        | Error m -> Alcotest.fail m)
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span recorded") true
        (Telemetry.Snapshot.spans_named snap name <> []))
    [
      "prepare";
      "parse";
      "optimize";
      "profile";
      "context";
      "access-merge";
      "evaluate";
      "graph-partition";
      "coarsen-level";
      "initial-partition";
      "rhop";
      "rhop-region";
      "move-insert";
      "schedule";
      "schedule-block";
      "verify";
      "simulate";
    ];
  Alcotest.(check bool) "rhop iterated" true
    (match Telemetry.Snapshot.find_counter snap "rhop.iterations" with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check bool) "partition quality gauges present" true
    (Telemetry.Snapshot.find_gauge snap "gdp.cut_edges" <> None
    && Telemetry.Snapshot.find_gauge snap "sched.total_cycles" <> None);
  (* the trace of a real pipeline run is valid JSON too *)
  match Json.parse (render_chrome snap) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "pipeline trace did not parse as a JSON object"

(* ------------------------------------------------------------------ *)
(* Winhist: sliding-window histograms                                  *)

module Winhist = Telemetry.Winhist

(* Exact quantile with Winhist's rank convention: rank = max 1 (ceil
   (q*n)) over the sorted sample. *)
let exact_quantile values q =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  a.(min (n - 1) (rank - 1))

(* The documented bound, plus a little float slack. *)
let tolerance = Winhist.max_rel_error +. 1e-9

let check_quantile name h values q =
  let est = Winhist.quantile h q in
  let exact = exact_quantile values q in
  let rel = Float.abs (est -. exact) /. Float.max 1. exact in
  if rel > tolerance then
    Alcotest.failf "%s: q=%.2f estimate %.2f vs exact %.2f (rel %.4f > %.4f)"
      name q est exact rel tolerance

let fake_clock () =
  let now = ref 0. in
  ((fun () -> !now), fun s -> now := s *. 1e6)

let test_winhist_quantiles_within_bound () =
  let clock, _set = fake_clock () in
  (* uniform, geometric and constant shapes, all in one live window *)
  let shapes =
    [
      ("uniform", List.init 1000 (fun i -> float_of_int (i + 1)));
      ("geometric", List.init 200 (fun i -> 1.5 ** float_of_int (i mod 40)));
      ("constant", List.init 50 (fun _ -> 1234.5));
    ]
  in
  List.iter
    (fun (name, values) ->
      let h = Winhist.create ~clock ~slot_s:10. ~slots:6 () in
      List.iter (Winhist.observe h) values;
      Alcotest.(check int) (name ^ " count") (List.length values) (Winhist.count h);
      List.iter
        (fun q -> check_quantile name h values q)
        [ 0.01; 0.25; 0.5; 0.75; 0.95; 0.99; 1.0 ];
      (* quantiles (plural) agrees with quantile one at a time *)
      match Winhist.quantiles h [ 0.5; 0.95; 0.99 ] with
      | [ a; b; c ] ->
          Alcotest.(check (float 1e-9)) "p50 agree" (Winhist.quantile h 0.5) a;
          Alcotest.(check (float 1e-9)) "p95 agree" (Winhist.quantile h 0.95) b;
          Alcotest.(check (float 1e-9)) "p99 agree" (Winhist.quantile h 0.99) c
      | _ -> Alcotest.fail "quantiles arity")
    shapes

let test_winhist_empty_and_single () =
  let clock, _set = fake_clock () in
  let h = Winhist.create ~clock () in
  Alcotest.(check int) "empty count" 0 (Winhist.count h);
  Alcotest.(check (float 0.)) "empty sum" 0. (Winhist.sum h);
  Alcotest.(check (float 0.)) "empty quantile" 0. (Winhist.quantile h 0.5);
  Alcotest.(check bool) "empty min/max" true (Winhist.min_max h = None);
  Winhist.observe h 42.;
  Alcotest.(check int) "single count" 1 (Winhist.count h);
  let est = Winhist.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "single p50 %.2f within bound of 42" est)
    true
    (Float.abs (est -. 42.) /. 42. <= tolerance);
  (* every quantile of a single observation is that observation *)
  Alcotest.(check (float 1e-9)) "single p99 = p1" (Winhist.quantile h 0.01) (Winhist.quantile h 0.99);
  Alcotest.(check bool) "single min/max" true (Winhist.min_max h = Some (42., 42.));
  (* sub-1 values share the underflow bucket and estimate as 0.5 *)
  let u = Winhist.create ~clock () in
  Winhist.observe u 0.25;
  Alcotest.(check (float 1e-9)) "underflow estimate" 0.5 (Winhist.quantile u 0.5)

let test_winhist_rotation () =
  let clock, set = fake_clock () in
  let h = Winhist.create ~clock ~slot_s:10. ~slots:6 () in
  set 0.;
  Winhist.observe h 100.;
  set 30.;
  Winhist.observe h 200.;
  Alcotest.(check int) "both slots live at 30 s" 2 (Winhist.count h);
  (* 59.9 s: the t=0 slot (epoch 0) is still inside the 60 s window *)
  set 59.9;
  Alcotest.(check int) "still live just before expiry" 2 (Winhist.count h);
  (* 60 s: epoch 0 ages out, the t=30 observation survives *)
  set 60.;
  Alcotest.(check int) "first slot expired at 60 s" 1 (Winhist.count h);
  Alcotest.(check bool) "survivor is the 200" true
    (Winhist.min_max h = Some (200., 200.));
  (* 90 s: everything gone *)
  set 90.;
  Alcotest.(check int) "window drained" 0 (Winhist.count h);
  (* a new observation reuses the stale ring slot without resurrecting
     its old contents *)
  set 120.;
  Winhist.observe h 300.;
  Alcotest.(check int) "fresh slot after reuse" 1 (Winhist.count h);
  Alcotest.(check bool) "fresh contents only" true
    (Winhist.min_max h = Some (300., 300.))

let test_winhist_single_slot () =
  let clock, set = fake_clock () in
  let h = Winhist.create ~clock ~slot_s:10. ~slots:1 () in
  Alcotest.(check (float 1e-9)) "window is one slot" 10. (Winhist.window_s h);
  set 0.;
  Winhist.observe h 5.;
  Winhist.observe h 7.;
  Alcotest.(check int) "one slot holds the epoch" 2 (Winhist.count h);
  set 9.9;
  Alcotest.(check int) "same epoch still live" 2 (Winhist.count h);
  set 10.;
  Alcotest.(check int) "next epoch empties a 1-slot window" 0 (Winhist.count h);
  Winhist.observe h 9.;
  Alcotest.(check int) "new epoch records" 1 (Winhist.count h);
  (* bad configurations are rejected *)
  (match Winhist.create ~slot_s:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted slot_s = 0");
  match Winhist.create ~slots:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted slots = 0"

let test_winhist_to_json () =
  let clock, _set = fake_clock () in
  let h = Winhist.create ~clock ~slot_s:10. ~slots:6 () in
  List.iter (Winhist.observe h) [ 10.; 20.; 30.; 40. ];
  match Winhist.to_json h with
  | Minijson.Obj fields ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            Alcotest.failf "to_json missing %s" k)
        [ "count"; "sum"; "mean"; "p50"; "p95"; "p99"; "window_s" ];
      Alcotest.(check bool) "count is 4" true
        (List.assoc "count" fields = Minijson.Num 4.);
      Alcotest.(check bool) "sum is 100" true
        (List.assoc "sum" fields = Minijson.Num 100.)
  | _ -> Alcotest.fail "to_json did not yield an object"

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick
      test_nesting_and_ordering;
    Alcotest.test_case "spans close on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "timed uses the telemetry clock" `Quick
      test_timed_agrees_with_span;
    Alcotest.test_case "disabled mode is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "counter monotonicity and gauge kinds" `Quick
      test_counter_monotonicity;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram bounds tile [0, inf)" `Quick
      test_histogram_bounds_partition;
    Alcotest.test_case "observe is a no-op when disabled" `Quick
      test_observe_disabled_is_noop;
    Alcotest.test_case "span durations feed a histogram" `Quick
      test_span_durations_observed;
    Alcotest.test_case "histogram CSV and summary file" `Quick
      test_histograms_csv_and_summary_file;
    QCheck_alcotest.to_alcotest chrome_trace_parses;
    QCheck_alcotest.to_alcotest chrome_trace_roundtrips_names;
    Alcotest.test_case "pipeline records every stage span" `Quick
      test_pipeline_records_stage_spans;
    Alcotest.test_case "winhist quantiles within documented bound" `Quick
      test_winhist_quantiles_within_bound;
    Alcotest.test_case "winhist empty window and single value" `Quick
      test_winhist_empty_and_single;
    Alcotest.test_case "winhist rotation expires old slots" `Quick
      test_winhist_rotation;
    Alcotest.test_case "winhist single-slot window" `Quick
      test_winhist_single_slot;
    Alcotest.test_case "winhist to_json shape" `Quick test_winhist_to_json;
  ]
