(** The Par task-pool layer and the intra-compile parallelism built on
    it: pool semantics and error contract, domain-safety of the shared
    telemetry and pipeline caches, and the determinism contracts of the
    parallel partitioning paths — par-mode results must depend on the
    parallelism request, never on how many domains execute them. *)

module P = Graphpart.Partitioner
module G = Graphpart.Graph
module Methods = Partition.Methods
module Pipeline = Gdp_core.Pipeline

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)

let test_pool_semantics () =
  Par.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "parallelism 1" 1 (Par.parallelism pool);
      Alcotest.(check int) "size 1" 1 (Par.size pool));
  Par.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "parallelism 4" 4 (Par.parallelism pool);
      (* default width is capped by the machine, never above the ask *)
      Alcotest.(check bool) "default width within request" true
        (Par.size pool >= 1 && Par.size pool <= 4));
  (* explicit workers force the width, up to the semantic request *)
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      if Par.backend = "domains" then
        Alcotest.(check int) "explicit width honoured" 4 (Par.size pool)
      else Alcotest.(check int) "seq size 1" 1 (Par.size pool));
  Par.with_pool ~workers:2 ~domains:8 (fun pool ->
      Alcotest.(check int) "cap keeps parallelism" 8 (Par.parallelism pool);
      Alcotest.(check bool) "cap bounds size" true (Par.size pool <= 2))

let test_map_for_chunks () =
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      let squares = Par.map pool ~n:100 (fun i -> i * i) in
      Alcotest.(check bool) "map lands by index" true
        (squares = Array.init 100 (fun i -> i * i));
      let hits = Array.make 1000 0 in
      Par.parallel_for pool ~n:1000 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "parallel_for covers each index once" true
        (Array.for_all (fun h -> h = 1) hits);
      (* a size that does not divide evenly into chunks *)
      let hits = Array.make 1001 0 in
      Par.parallel_chunks pool ~n:1001 (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool) "parallel_chunks covers each index once" true
        (Array.for_all (fun h -> h = 1) hits);
      Par.parallel_for pool ~n:0 (fun _ -> assert false);
      Par.parallel_chunks pool ~n:0 (fun _ _ -> assert false);
      Alcotest.(check bool) "empty map" true
        (Par.map pool ~n:0 (fun _ -> assert false) = [||]))

let test_exception_contract () =
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      let ran = Array.make 64 false in
      match
        Par.parallel_for pool ~n:64 (fun i ->
            ran.(i) <- true;
            if i mod 7 = 3 then failwith (string_of_int i))
      with
      | () -> Alcotest.fail "expected the body's exception to propagate"
      | exception Failure msg ->
          Alcotest.(check string) "lowest failing index wins" "3" msg;
          if Par.backend = "domains" then
            Alcotest.(check bool) "every index still ran" true
              (Array.for_all Fun.id ran))

let test_nested_runs_inline () =
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      let totals =
        Par.map pool ~n:8 (fun i ->
            (* re-entering the pool from a body must run inline — a
               deadlock here would hang the whole suite *)
            let s = ref 0 in
            Par.parallel_for pool ~n:100 (fun j -> s := !s + j + i);
            !s)
      in
      Alcotest.(check bool) "nested results correct" true
        (Array.to_list totals
        = List.init 8 (fun i -> (100 * 99 / 2) + (100 * i))))

let test_lock_stress () =
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      let lock = Par.Lock.create () in
      let counter = ref 0 in
      Par.parallel_for pool ~n:10_000 (fun _ ->
          Par.Lock.with_lock lock (fun () -> incr counter));
      Alcotest.(check int) "no lost updates under the lock" 10_000 !counter)

(* ------------------------------------------------------------------ *)
(* Domain-safety of the shared state the compile pipeline touches      *)

let test_telemetry_stress () =
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.reset ();
      Telemetry.disable ())
  @@ fun () ->
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      Par.parallel_for pool ~n:4_000 (fun i ->
          Telemetry.incr "par.test.counter";
          Telemetry.observe "par.test.hist" (float_of_int (i mod 97));
          Telemetry.set_gauge "par.test.gauge" (float_of_int i);
          (* spans from worker domains are dropped, not corrupted *)
          Alcotest.(check int)
            "span body result" 7
            (Telemetry.with_span "par.test.span" (fun () -> 7))));
  Alcotest.(check int) "counter lost no updates" 4_000
    (Telemetry.counter_value "par.test.counter");
  let snap = Telemetry.snapshot () in
  match List.assoc_opt "par.test.hist" snap.Telemetry.hists with
  | None -> Alcotest.fail "histogram missing from the snapshot"
  | Some h ->
      Alcotest.(check int) "histogram lost no observations" 4_000
        h.Telemetry.h_count;
      Alcotest.(check int) "buckets sum to the count" 4_000
        (Array.fold_left ( + ) 0 h.Telemetry.h_buckets)

let test_winhist_stress () =
  (* the metrics plane mutates Winhist from whichever context handles a
     request; every mutation is guarded by the instance's Par.Lock, so
     concurrent observers must lose nothing *)
  let clock () = 0. in
  let h = Telemetry.Winhist.create ~clock () in
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      Par.parallel_for pool ~n:8_000 (fun i ->
          Telemetry.Winhist.observe h (float_of_int (1 + (i mod 500)))));
  Alcotest.(check int) "no lost observations" 8_000
    (Telemetry.Winhist.count h);
  (* a consistent merged read under no contention afterwards *)
  match Telemetry.Winhist.quantiles h [ 0.5; 0.99 ] with
  | [ p50; p99 ] ->
      Alcotest.(check bool) "p50 sane" true (p50 > 0. && p50 <= 500. *. 1.1);
      Alcotest.(check bool) "p99 >= p50" true (p99 >= p50)
  | _ -> Alcotest.fail "quantiles arity"

let test_clear_caches_concurrent () =
  let hits = Atomic.make 0 in
  Pipeline.register_cache_clearer ~key:"test-par-clearer" (fun () ->
      Atomic.incr hits);
  (* hammer clear_caches from every domain: no deadlock (the clearer
     list is snapshotted, clearers run outside the lock) and no torn
     registry state afterwards *)
  Par.with_pool ~workers:4 ~domains:4 (fun pool ->
      Par.parallel_for pool ~n:64 (fun _ -> Pipeline.clear_caches ()));
  let before = Atomic.get hits in
  Pipeline.clear_caches ();
  Alcotest.(check bool) "clearer ran under contention" true (before > 0);
  Alcotest.(check bool) "registry intact after the stress" true
    (Atomic.get hits > before)

(* ------------------------------------------------------------------ *)
(* Parallel partitioner determinism: same answer for any domain count  *)

let par_bisect ?config ?workers ~domains g =
  Par.with_pool ?workers ~domains (fun pool -> P.bisect ?config ~pool g)

let prop_par_bisect_domain_invariant =
  Helpers.qcheck ~count:40
    "parallel bisection is identical for 2 and 4 domains at any width"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let p2 = par_bisect ~domains:2 g in
      Array.for_all (fun p -> p = 0 || p = 1) p2
      && par_bisect ~domains:2 g = p2
      && par_bisect ~domains:4 g = p2
      (* execution width must never leak into the answer *)
      && par_bisect ~workers:1 ~domains:4 g = p2
      && par_bisect ~workers:4 ~domains:4 g = p2)
    Test_graphpart.arbitrary_graph

let prop_par_multi_seed_fm_deterministic =
  Helpers.qcheck ~count:40
    "multi-seed FM (8 seeds) picks the same winner for 2 and 4 domains"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let config = { (P.default_config ~ncon) with P.fm_seeds = 8 } in
      let p2 = par_bisect ~config ~domains:2 g in
      par_bisect ~config ~domains:4 g = p2
      (* and the extra seeds never worsen the objective *)
      && P.evaluate config g p2
         <= P.evaluate config g
              (par_bisect ~config:{ config with P.fm_seeds = 1 } ~domains:2 g))
    Test_graphpart.arbitrary_graph

let prop_par_kway_domain_invariant =
  Helpers.qcheck ~count:25 "parallel 4-way partition is domain-invariant"
    (fun (_, ncon, weights, edges) ->
      let g = G.create ~ncon ~weights ~edges in
      let run domains =
        Par.with_pool ~domains (fun pool -> P.kway ~pool g ~nparts:4)
      in
      let p2 = run 2 in
      Array.for_all (fun p -> p >= 0 && p < 4) p2 && run 4 = p2)
    Test_graphpart.arbitrary_graph

(* ------------------------------------------------------------------ *)
(* End-to-end artifact identity through the full pipeline.  The
   service-layer artifact is the canonical rendering the gdpcd cache
   keys on, so "same bytes" here is exactly the cache-compatibility
   contract of docs/parallelism.md.                                    *)

let artifact ?par_workers ~par_domains ~move_latency method_ source =
  let settings =
    {
      (Pipeline.Settings.default method_) with
      Pipeline.Settings.machine =
        Machine_spec.of_legacy ~clusters:2 ~move_latency;
      par_domains;
    }
  in
  let job =
    {
      Service.Protocol.id = "par-test";
      source;
      input = Array.to_list Gen_minic.input;
      settings;
      deadline_ms = None;
      verify = false;
      trace_id = None;
    }
  in
  match Service.Protocol.evaluate_job ?par_workers job with
  | Ok doc -> Minijson.encode doc
  | Error m ->
      Alcotest.failf "evaluate_job (%s, par=%d) failed: %s"
        (Methods.name method_) par_domains m

let latency_of_seed seed = [| 1; 5; 10 |].(seed mod 3)

let prop_methods_par_identity =
  Helpers.qcheck ~count:3
    "unified/naive/profile-max artifacts are byte-identical for par \
     domains 1, 2 and 4"
    (fun seed ->
      let source = Gen_minic.gen_program_with_seed seed in
      let move_latency = latency_of_seed seed in
      List.for_all
        (fun m ->
          let a1 = artifact ~par_domains:1 ~move_latency m source in
          let a2 = artifact ~par_domains:2 ~move_latency m source in
          let a4 = artifact ~par_domains:4 ~move_latency m source in
          a1 = a2 && a2 = a4)
        [ Methods.Unified; Methods.Naive; Methods.Profile_max ])
    Gen_minic.arbitrary_program

let prop_gdp_par_deterministic =
  Helpers.qcheck ~count:3
    "gdp par artifacts are byte-identical for 2 and 4 domains and under \
     a worker cap"
    (fun seed ->
      let source = Gen_minic.gen_program_with_seed seed in
      let move_latency = latency_of_seed seed in
      let a2 = artifact ~par_domains:2 ~move_latency Methods.Gdp source in
      artifact ~par_domains:2 ~move_latency Methods.Gdp source = a2
      && artifact ~par_domains:4 ~move_latency Methods.Gdp source = a2
      (* capping execution width must never change the artifact *)
      && artifact ~par_workers:1 ~par_domains:4 ~move_latency Methods.Gdp
           source
         = a2)
    Gen_minic.arbitrary_program

let suite =
  [
    Alcotest.test_case "pool semantics" `Quick test_pool_semantics;
    Alcotest.test_case "map/for/chunks cover exactly once" `Quick
      test_map_for_chunks;
    Alcotest.test_case "exception contract" `Quick test_exception_contract;
    Alcotest.test_case "nested calls run inline" `Quick
      test_nested_runs_inline;
    Alcotest.test_case "lock stress" `Quick test_lock_stress;
    Alcotest.test_case "telemetry stress under domains" `Quick
      test_telemetry_stress;
    Alcotest.test_case "winhist stress under domains" `Quick
      test_winhist_stress;
    Alcotest.test_case "clear_caches under domains" `Quick
      test_clear_caches_concurrent;
    prop_par_bisect_domain_invariant;
    prop_par_multi_seed_fm_deterministic;
    prop_par_kway_domain_invariant;
    prop_methods_par_identity;
    prop_gdp_par_deterministic;
  ]
