(** Partitioning tests: access-pattern merging, the RHOP estimator and
    partitioner invariants, GDP object partitioning, the baselines. *)

open Vliw_ir
module M = Partition.Merge
module Methods = Partition.Methods

let machine = Helpers.machine ()

let context_of src ~input =
  let prog = Minic.compile ~unroll:false src in
  let reference = Vliw_interp.Interp.run prog ~input in
  Methods.make_context ~machine ~prog
    ~profile:reference.Vliw_interp.Interp.profile ()

(* ------------------------------------------------------------------ *)
(* Access-pattern merging (Section 3.3.1)                              *)

let ambiguous_src =
  {|
int value1;
int value2[4];
void main() {
  int *foo = &value1;
  if (in(0) > 0) {
    int *x = malloc(4);
    x[0] = 7;
    foo = x;
  }
  out(foo[0]);
  out(value2[1]);
}
|}

let test_merge_ambiguous_objects () =
  (* the paper's Figure 4: a load that may access either the global or
     the heap object forces them into one group *)
  let ctx = context_of ambiguous_src ~input:[| 1 |] in
  let merge = ctx.Methods.merge in
  let g1 = M.group_of_obj merge (Data.Global "value1") in
  let gh = M.group_of_obj merge (Data.Heap 0) in
  let g2 = M.group_of_obj merge (Data.Global "value2") in
  Alcotest.(check bool) "value1 grouped with heap" true (g1 = gh && g1 <> None);
  Alcotest.(check bool) "value2 separate" true (g2 <> g1)

let test_merge_shared_ops () =
  (* two loads of the same object end up in the same group *)
  let src =
    {|
int a[4] = {1, 2, 3, 4};
void main() { out(a[0] + a[3]); }
|}
  in
  let ctx = context_of src ~input:[||] in
  let merge = ctx.Methods.merge in
  match M.group_of_obj merge (Data.Global "a") with
  | None -> Alcotest.fail "a has no group"
  | Some g ->
      Alcotest.(check int) "two member ops" 2
        (List.length (M.group merge g).M.mem_ops)

let test_merge_group_sizes () =
  let ctx = context_of ambiguous_src ~input:[| 1 |] in
  let merge = ctx.Methods.merge in
  let total =
    Array.fold_left (fun acc g -> acc + g.M.bytes) 0 merge.M.groups
  in
  Alcotest.(check int) "all bytes accounted"
    (Data.total_bytes ctx.Methods.objtab) total

let test_merge_partition_property () =
  (* groups partition the object set: every object in exactly one group *)
  let ctx = context_of ambiguous_src ~input:[| 1 |] in
  let merge = ctx.Methods.merge in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      List.iter
        (fun o ->
          if Hashtbl.mem seen o then Alcotest.fail "object in two groups";
          Hashtbl.replace seen o ())
        g.M.objects)
    merge.M.groups;
  Alcotest.(check int) "all objects covered"
    (Data.table_length ctx.Methods.objtab)
    (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* RHOP invariants                                                     *)

let check_inv1 prog assign =
  (* raises when a register web spans clusters *)
  List.iter
    (fun f -> ignore (Vliw_sched.Assignment.reg_homes assign f))
    (Prog.funcs prog)

let test_rhop_unified_invariants () =
  let b = Benchsuite.Suite.find "rawdaudio" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  let assign =
    Vliw_sched.Assignment.create
      ~num_clusters:(Vliw_machine.num_clusters machine)
  in
  Partition.Rhop.partition ~machine
    ~objects_of:(Methods.objects_of ctx)
    ~lock_of:(fun _ -> None)
    ctx.Methods.prog assign;
  (* every op assigned *)
  Prog.iter_ops
    (fun op ->
      match
        Vliw_sched.Assignment.cluster_of_opt assign ~op_id:(Op.id op)
      with
      | Some c -> Alcotest.(check bool) "in range" true (c = 0 || c = 1)
      | None -> Alcotest.failf "op %d unassigned" (Op.id op))
    ctx.Methods.prog;
  check_inv1 ctx.Methods.prog assign

let test_rhop_respects_locks () =
  let b = Benchsuite.Suite.find "rawdaudio" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  (* lock every group to cluster 1 *)
  let homes =
    List.concat_map
      (fun (g : M.group) -> List.map (fun o -> (o, 1)) g.M.objects)
      (M.data_groups ctx.Methods.merge)
  in
  let o = Methods.clustered_with_homes ctx ~method_name:"t" ~rhop_runs:1 homes in
  let assign = o.Methods.clustered.Vliw_sched.Move_insert.cassign in
  Prog.iter_ops
    (fun op ->
      if Op.is_mem op then
        Alcotest.(check int) "memory op on locked cluster" 1
          (Vliw_sched.Assignment.cluster_of assign ~op_id:(Op.id op)))
    ctx.Methods.prog;
  (* the assignment validates against the homes *)
  Vliw_sched.Assignment.validate assign o.Methods.clustered.Vliw_sched.Move_insert.cprog
    ~objects_of:(Methods.objects_of ctx)

let test_est_prefers_colocation () =
  (* cutting the only flow edge must not look free *)
  let r = Reg.of_int in
  let ops =
    [
      Op.make ~id:0 (Op.Ibin (Op.Add, r 0, Op.Imm 1, Op.Imm 2));
      Op.make ~id:1 (Op.Ibin (Op.Add, r 1, Op.Reg (r 0), Op.Imm 1));
    ]
  in
  let block =
    Block.v ~label:"bb0" ~body:ops ~term:(Op.make ~id:2 (Op.Ret None))
  in
  let deps = Vliw_sched.Deps.build ~machine block in
  let est =
    Partition.Est.make ~machine ~deps ~pins:[] ~couplings:[]
      ~live_out:Reg.Set.empty ~xmove_weight:5
  in
  let together = Partition.Est.cost est [| 0; 0; 0 |] in
  let apart = Partition.Est.cost est [| 0; 1; 0 |] in
  Alcotest.(check bool) "colocated cheaper" true (together < apart)

(* ------------------------------------------------------------------ *)
(* GDP object partitioning                                             *)

let test_gdp_balances_data () =
  let b = Benchsuite.Suite.find "rawcaudio" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  let r =
    Partition.Gdp.partition_objects ~machine ~prog:ctx.Methods.prog
      ~merge:ctx.Methods.merge ~dfg:ctx.Methods.dfg ~profile:ctx.Methods.profile ()
  in
  let bytes = Array.make 2 0 in
  List.iter
    (fun (o, c) ->
      bytes.(c) <- bytes.(c) + Data.size_of_obj ctx.Methods.objtab o)
    r.Partition.Gdp.obj_home;
  let total = bytes.(0) + bytes.(1) in
  let bigger = max bytes.(0) bytes.(1) in
  (* within the configured tolerance (25%) plus integer slop *)
  Alcotest.(check bool) "balanced" true
    (float bigger <= (1.30 /. 2.) *. float total);
  (* every object got a home *)
  Alcotest.(check int) "all objects"
    (Data.table_length ctx.Methods.objtab)
    (List.length r.Partition.Gdp.obj_home)

let test_gdp_groups_stay_together () =
  let ctx = context_of ambiguous_src ~input:[| 1 |] in
  let r =
    Partition.Gdp.partition_objects ~machine ~prog:ctx.Methods.prog
      ~merge:ctx.Methods.merge ~dfg:ctx.Methods.dfg ~profile:ctx.Methods.profile ()
  in
  let home o = List.assoc o r.Partition.Gdp.obj_home in
  Alcotest.(check int) "merged objects share a home"
    (home (Data.Global "value1"))
    (home (Data.Heap 0))

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)

let test_profile_max_balance_cap () =
  let b = Benchsuite.Suite.find "rawdaudio" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  let o = Methods.run Methods.Profile_max ctx in
  let bytes = Array.make 2 0 in
  List.iter
    (fun (obj, c) ->
      bytes.(c) <- bytes.(c) + Data.size_of_obj ctx.Methods.objtab obj)
    o.Methods.obj_home;
  let total = bytes.(0) + bytes.(1) in
  Alcotest.(check bool) "capacity respected" true
    (float (max bytes.(0) bytes.(1)) <= (1.25 /. 2.) *. float total +. 8200.)

let test_naive_max_frequency () =
  (* naive puts each group exactly where it is accessed most *)
  let b = Benchsuite.Suite.find "fir" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  let assign =
    Vliw_sched.Assignment.create
      ~num_clusters:(Vliw_machine.num_clusters machine)
  in
  Partition.Rhop.partition ~machine
    ~objects_of:(Methods.objects_of ctx)
    ~lock_of:(fun _ -> None)
    ctx.Methods.prog assign;
  let homes =
    Partition.Baselines.naive_homes ~merge:ctx.Methods.merge
      ~profile:ctx.Methods.profile ~assign ~num_clusters:2 ()
  in
  let freqs =
    Partition.Baselines.group_frequencies ~merge:ctx.Methods.merge
      ~profile:ctx.Methods.profile ~assign ~num_clusters:2
  in
  List.iter
    (fun (gid, freq) ->
      let g = M.group ctx.Methods.merge gid in
      match g.M.objects with
      | [] -> ()
      | o :: _ ->
          let c = List.assoc o homes in
          Alcotest.(check bool) "placed at max frequency" true
            (freq.(c) >= freq.(1 - c)))
    freqs

let test_bug_partitioner () =
  (* the greedy baseline must also produce valid, semantics-preserving
     partitions *)
  let b = Benchsuite.Suite.find "rawdaudio" in
  let p = Gdp_core.Pipeline.prepare b in
  let ctx = Gdp_core.Pipeline.context ~machine p in
  let assign =
    Vliw_sched.Assignment.create
      ~num_clusters:(Vliw_machine.num_clusters machine)
  in
  Partition.Bug.partition ~machine
    ~objects_of:(Methods.objects_of ctx)
    ~lock_of:(fun _ -> None)
    ctx.Methods.prog assign;
  check_inv1 ctx.Methods.prog assign;
  let clustered = Vliw_sched.Move_insert.apply ctx.Methods.prog assign in
  let re =
    Vliw_interp.Interp.run clustered.Vliw_sched.Move_insert.cprog
      ~input:b.Benchsuite.Bench_intf.input
  in
  Alcotest.(check bool) "semantics preserved" true
    (Helpers.equal_outputs re.Vliw_interp.Interp.outputs
       p.Gdp_core.Pipeline.reference.Vliw_interp.Interp.outputs)

let test_method_names () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true
        (Methods.of_name (Methods.name m) = m);
      Alcotest.(check bool) "of_string inverts to_string" true
        (Methods.of_string (Methods.to_string m) = Ok m))
    Methods.all;
  (match Methods.of_string "frobnicate" with
  | Ok _ -> Alcotest.fail "unknown name must be rejected"
  | Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the bad input" true
        (contains msg "frobnicate"));
  (* legacy aliases stay routable through of_name *)
  Alcotest.(check bool) "pm alias" true (Methods.of_name "pm" = Methods.Profile_max)

let suite =
  [
    Alcotest.test_case "merge: ambiguous objects" `Quick
      test_merge_ambiguous_objects;
    Alcotest.test_case "merge: shared operations" `Quick test_merge_shared_ops;
    Alcotest.test_case "merge: sizes accounted" `Quick test_merge_group_sizes;
    Alcotest.test_case "merge: partition property" `Quick
      test_merge_partition_property;
    Alcotest.test_case "rhop: unified invariants" `Quick
      test_rhop_unified_invariants;
    Alcotest.test_case "rhop: locks respected" `Quick test_rhop_respects_locks;
    Alcotest.test_case "est: colocation preferred" `Quick
      test_est_prefers_colocation;
    Alcotest.test_case "gdp: balances data bytes" `Quick test_gdp_balances_data;
    Alcotest.test_case "gdp: merge groups stay together" `Quick
      test_gdp_groups_stay_together;
    Alcotest.test_case "profile max: balance cap" `Quick
      test_profile_max_balance_cap;
    Alcotest.test_case "naive: max-frequency placement" `Quick
      test_naive_max_frequency;
    Alcotest.test_case "bug: greedy baseline partitioner" `Quick
      test_bug_partitioner;
    Alcotest.test_case "method names" `Quick test_method_names;
  ]
