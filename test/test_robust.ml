(** Robustness layer: the fault-injection registry, [Pipeline.verify]
    failure paths, graceful degradation along the method chain,
    crash-safe experiment sweeps and the differential fuzzing harness. *)

module Methods = Partition.Methods
module Pipeline = Gdp_core.Pipeline

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(** Arm [spec], run [f], always disarm (the fault registry is global
    state shared by every test in this binary). *)
let with_injection ?seed spec f =
  (match Fault.parse_spec spec with
  | Ok sp -> Fault.arm ?seed sp
  | Error m -> Alcotest.failf "bad spec %S: %s" spec m);
  Fun.protect ~finally:Fault.disarm f

let prepared_ctx ?(move_latency = 5) name =
  let b = Benchsuite.Suite.find name in
  let p = Pipeline.prepare b in
  let machine = Vliw_machine.paper_machine ~move_latency () in
  (p, Pipeline.context ~machine p)

let expect_error ~substr = function
  | Ok _ -> Alcotest.failf "expected a verification failure (%s)" substr
  | Error m ->
      if not (contains m substr) then
        Alcotest.failf "expected %S in error %S" substr m

(* ------------------------------------------------------------------ *)
(* Fault registry and spec language                                    *)

let test_parse_spec () =
  (match Fault.parse_spec "move.drop" with
  | Ok sp ->
      Alcotest.(check bool)
        "default trigger is @1" true
        (Fault.spec_entries sp = [ ("move.drop", Fault.Nth 1) ])
  | Error m -> Alcotest.failf "move.drop: %s" m);
  (match Fault.parse_spec "sched.overbook@*" with
  | Ok sp ->
      Alcotest.(check bool)
        "@* is Always" true
        (Fault.spec_entries sp = [ ("sched.overbook", Fault.Always) ])
  | Error m -> Alcotest.failf "sched.overbook@*: %s" m);
  (match Fault.parse_spec "service.worker.kill@4*" with
  | Ok sp ->
      Alcotest.(check bool)
        "@4* is Every 4" true
        (Fault.spec_entries sp = [ ("service.worker.kill", Fault.Every 4) ])
  | Error m -> Alcotest.failf "service.worker.kill@4*: %s" m);
  (match Fault.parse_spec "partition.infeasible, sim.move-latency@3" with
  | Ok sp ->
      Alcotest.(check int) "two entries" 2 (List.length (Fault.spec_entries sp))
  | Error m -> Alcotest.failf "two-entry spec: %s" m);
  (* every documented point parses under its own name *)
  List.iter
    (fun (p : Fault.point) ->
      match Fault.parse_spec p.Fault.name with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "point %s rejected: %s" p.Fault.name m)
    Fault.points;
  let expect_parse_error ~substr s =
    match Fault.parse_spec s with
    | Ok _ -> Alcotest.failf "spec %S should be rejected" s
    | Error m ->
        if not (contains m substr) then
          Alcotest.failf "spec %S: expected %S in %S" s substr m
  in
  expect_parse_error ~substr:"unknown injection point" "nope";
  expect_parse_error ~substr:"bad trigger" "move.drop@0";
  expect_parse_error ~substr:"bad trigger" "move.drop@0*";
  expect_parse_error ~substr:"bad trigger" "move.drop@x";
  expect_parse_error ~substr:"empty" ""

let test_trigger_semantics () =
  with_injection "move.drop@3" (fun () ->
      let fires = List.init 5 (fun _ -> Fault.fire "move.drop") in
      Alcotest.(check (list bool))
        "Nth 3 fires exactly once, on the third opportunity"
        [ false; false; true; false; false ]
        fires;
      Alcotest.(check int) "one injection" 1 (Fault.counts ()).Fault.injected;
      Alcotest.(check bool)
        "unmentioned point never fires" false (Fault.fire "move.dup"));
  with_injection "sched.overbook@*" (fun () ->
      Alcotest.(check (list bool))
        "Always fires every time"
        [ true; true; true ]
        (List.init 3 (fun _ -> Fault.fire "sched.overbook"));
      Alcotest.(check int) "three injections" 3
        (Fault.counts ()).Fault.injected);
  with_injection "move.drop@2*" (fun () ->
      Alcotest.(check (list bool))
        "Every 2 fires on each even opportunity"
        [ false; true; false; true; false; true ]
        (List.init 6 (fun _ -> Fault.fire "move.drop"));
      Alcotest.(check int) "three periodic injections" 3
        (Fault.counts ()).Fault.injected);
  Alcotest.(check bool) "disarmed never fires" false (Fault.fire "move.drop")

let test_rand_deterministic () =
  let draws () =
    with_injection ~seed:42 "sim.move-latency@*" (fun () ->
        List.init 8 (fun _ -> Fault.rand "sim.move-latency" 100))
  in
  Alcotest.(check (list int)) "same (spec, seed) => same draws" (draws ())
    (draws ());
  List.iter
    (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 100))
    (draws ());
  Alcotest.(check int) "disarmed rand is 0" 0 (Fault.rand "sim.move-latency" 100)

let test_counts_ledger () =
  with_injection "move.drop" (fun () ->
      Alcotest.(check bool)
        "arming resets counters" true
        (Fault.counts () = { Fault.injected = 0; detected = 0; recovered = 0 });
      Fault.note_detected ();
      Fault.note_detected ();
      Fault.note_recovered ();
      let c = Fault.counts () in
      Alcotest.(check int) "detected" 2 c.Fault.detected;
      Alcotest.(check int) "recovered" 1 c.Fault.recovered;
      Fault.reset_counts ();
      Alcotest.(check int) "reset" 0 (Fault.counts ()).Fault.detected)

(* ------------------------------------------------------------------ *)
(* Pipeline.verify failure paths (satellite: each distinct Error
   branch must be reachable with its expected message)                 *)

let test_verify_clustered_interp_failure () =
  (* starve the clustered run of its input: in(i) must fail *)
  let p, ctx = prepared_ctx "fir" in
  let e = Pipeline.evaluate ctx Methods.Gdp in
  let starved =
    {
      p with
      Pipeline.bench =
        { p.Pipeline.bench with Benchsuite.Bench_intf.input = [||] };
    }
  in
  expect_error ~substr:"clustered interpretation failed"
    (Pipeline.verify starved ctx e)

let test_verify_clustered_output_mismatch () =
  (* drop every intercluster move during evaluation: consumers read
     stale shadow registers, so the clustered interpretation diverges *)
  let p, ctx = prepared_ctx "fir" in
  let e =
    with_injection "move.drop@*" (fun () -> Pipeline.evaluate ctx Methods.Gdp)
  in
  expect_error ~substr:"clustered interpretation outputs differ"
    (Pipeline.verify p ctx e)

let test_verify_sim_capacity_violation () =
  (* overbook the schedules the simulator builds internally: its
     per-cycle resource check must reject them *)
  let p, ctx = prepared_ctx "fir" in
  let e = Pipeline.evaluate ctx Methods.Gdp in
  with_injection "sched.overbook@*" (fun () ->
      expect_error ~substr:"cycle simulation failed"
        (Pipeline.verify p ctx e);
      Alcotest.(check bool)
        "capacity faults were injected" true
        ((Fault.counts ()).Fault.injected > 0))

let test_verify_sim_output_mismatch () =
  (* corrupt every intercluster move's value inside the simulator *)
  let p, ctx = prepared_ctx "fir" in
  let e = Pipeline.evaluate ctx Methods.Gdp in
  with_injection "sim.move-value@*" (fun () ->
      expect_error ~substr:"cycle simulation outputs differ"
        (Pipeline.verify p ctx e))

let test_verify_cycle_model_disagreement () =
  let p, ctx = prepared_ctx "fir" in
  let e = Pipeline.evaluate ctx Methods.Gdp in
  let bumped =
    {
      e with
      Pipeline.report =
        {
          e.Pipeline.report with
          Vliw_sched.Perf.total_cycles =
            e.Pipeline.report.Vliw_sched.Perf.total_cycles + 1;
        };
    }
  in
  expect_error ~substr:"simulated cycles" (Pipeline.verify p ctx bumped);
  expect_error ~substr:"disagree with the static model"
    (Pipeline.verify p ctx bumped)

let test_verify_move_model_disagreement () =
  let p, ctx = prepared_ctx "fir" in
  let e = Pipeline.evaluate ctx Methods.Gdp in
  let bumped =
    {
      e with
      Pipeline.report =
        {
          e.Pipeline.report with
          Vliw_sched.Perf.dynamic_moves =
            e.Pipeline.report.Vliw_sched.Perf.dynamic_moves + 1;
        };
    }
  in
  expect_error ~substr:"simulated moves" (Pipeline.verify p ctx bumped)

let test_verify_corrupt_assignment_detected () =
  (* hand-corrupt the cluster assignment of one compute op in a
     finished evaluation: the structural validator (the detection layer
     [evaluate_checked] runs) must reject it — a register web now spans
     clusters, or a memory op left its objects' home cluster *)
  let _, ctx = prepared_ctx "fir" in
  let e = Pipeline.evaluate ctx Methods.Gdp in
  let c = e.Pipeline.outcome.Methods.clustered in
  let routes = c.Vliw_sched.Move_insert.move_routes in
  let nclusters = Vliw_machine.num_clusters ctx.Methods.machine in
  let caught = ref false in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun op ->
              let op_id = Vliw_ir.Op.id op in
              if (not !caught) && not (Hashtbl.mem routes op_id) then begin
                let a = Vliw_sched.Assignment.copy
                    c.Vliw_sched.Move_insert.cassign in
                match Vliw_sched.Assignment.cluster_of_opt a ~op_id with
                | None -> ()
                | Some cur ->
                    Vliw_sched.Assignment.set_cluster a ~op_id
                      ((cur + 1) mod nclusters);
                    (try
                       Vliw_sched.Assignment.validate a
                         c.Vliw_sched.Move_insert.cprog
                         ~objects_of:(Methods.objects_of ctx)
                     with Vliw_sched.Assignment.Invalid _ -> caught := true)
              end)
            (Vliw_ir.Block.ops b))
        (Vliw_ir.Func.blocks f))
    (Vliw_ir.Prog.funcs c.Vliw_sched.Move_insert.cprog);
  Alcotest.(check bool)
    "some single-op reassignment violates an invariant" true !caught

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)

let test_robust_identity_without_faults () =
  let p, ctx = prepared_ctx "fir" in
  match Pipeline.evaluate_robust p ctx Methods.Gdp with
  | Error m -> Alcotest.failf "clean run failed: %s" m
  | Ok r ->
      Alcotest.(check string)
        "no degradation" "gdp"
        (Methods.name r.Pipeline.used);
      Alcotest.(check int) "no fallbacks" 0 (List.length r.Pipeline.fallbacks)

let test_robust_degrades_on_infeasible_partition () =
  let p, ctx = prepared_ctx "fir" in
  with_injection "partition.infeasible@1" (fun () ->
      match Pipeline.evaluate_robust p ctx Methods.Gdp with
      | Error m -> Alcotest.failf "chain exhausted: %s" m
      | Ok r ->
          Alcotest.(check string)
            "degraded to the next method" "profile-max"
            (Methods.name r.Pipeline.used);
          (match r.Pipeline.fallbacks with
          | [ fb ] ->
              Alcotest.(check string)
                "gdp is the recorded failure" "gdp" fb.Pipeline.failed_method;
              Alcotest.(check bool)
                "reason names the infeasible constraint" true
                (contains fb.Pipeline.reason "infeasible")
          | fbs ->
              Alcotest.failf "expected exactly one fallback, got %d"
                (List.length fbs));
          let c = Fault.counts () in
          Alcotest.(check int) "injected" 1 c.Fault.injected;
          Alcotest.(check int) "detected" 1 c.Fault.detected;
          Alcotest.(check int) "recovered" 1 c.Fault.recovered)

(** Every documented injection point, when armed on a real benchmark,
    must never be silently accepted: either it finds no opportunity
    (zero injections), or the fault is detected and the chain degrades
    (recovery), or — when armed on *every* opportunity, so even the
    fallback methods run in a corrupted environment — the chain is
    exhausted as a clean [Error] rather than a crash.  A single
    injected fault that is neither detected nor inert (it had enough
    slack to never reach an output) is escalated to [@*], where
    detection becomes mandatory. *)
let test_every_point_detected_or_inert () =
  let p, ctx = prepared_ctx "fir" in
  let run spec =
    with_injection spec (fun () ->
        let r = Pipeline.evaluate_robust p ctx Methods.Gdp in
        (r, Fault.counts ()))
  in
  List.iter
    (fun (pt : Fault.point) ->
      match run (pt.Fault.name ^ "@1") with
      | Ok r, { Fault.injected = 0; _ } ->
          (* no opportunity on this benchmark: nothing to detect *)
          Alcotest.(check int)
            (pt.Fault.name ^ ": inert run has no fallbacks")
            0
            (List.length r.Pipeline.fallbacks)
      | Ok r, c when c.Fault.detected > 0 ->
          Alcotest.(check bool)
            (pt.Fault.name ^ ": pipeline recovered")
            true
            (c.Fault.recovered > 0 && r.Pipeline.fallbacks <> [])
      | Error _, c ->
          Alcotest.(check bool)
            (pt.Fault.name ^ ": exhausted chain still detected the fault")
            true (c.Fault.detected > 0)
      | Ok _, _ -> (
          (* injected but undetected: the single fault never propagated;
             corrupt every opportunity instead *)
          match run (pt.Fault.name ^ "@*") with
          | Ok r, c ->
              Alcotest.(check bool)
                (pt.Fault.name ^ "@*: detected and recovered")
                true
                (c.Fault.detected > 0 && r.Pipeline.fallbacks <> []);
          | Error _, c ->
              Alcotest.(check bool)
                (pt.Fault.name ^ "@*: exhausted chain still detected")
                true (c.Fault.detected > 0)))
    Fault.points

let test_fallback_chain_order () =
  Alcotest.(check (list string))
    "gdp chain"
    [ "gdp"; "profile-max"; "naive"; "unified" ]
    (List.map Methods.name (Methods.fallback_chain Methods.Gdp));
  Alcotest.(check (list string))
    "naive chain" [ "naive"; "unified" ]
    (List.map Methods.name (Methods.fallback_chain Methods.Naive));
  Alcotest.(check (list string))
    "unified is terminal" [ "unified" ]
    (List.map Methods.name (Methods.fallback_chain Methods.Unified))

(* ------------------------------------------------------------------ *)
(* Crash-safe experiment sweeps                                        *)

let test_experiments_error_row () =
  Gdp_core.Experiments.clear_cache ();
  Fun.protect ~finally:(fun () -> Gdp_core.Experiments.clear_cache ())
  @@ fun () ->
  with_injection "partition.infeasible@*" (fun () ->
      let rows =
        Gdp_core.Experiments.run_all
          ~benches:[ Benchsuite.Suite.find "fir" ]
          ~move_latency:5 ()
      in
      match rows with
      | [ r ] ->
          Alcotest.(check bool)
            "failed benchmark becomes an error row" true
            (r.Gdp_core.Experiments.error <> None);
          Alcotest.(check bool)
            "no cycles recorded" true
            (Gdp_core.Experiments.cycles_opt r "gdp" = None);
          Alcotest.(check string) "right benchmark" "fir"
            r.Gdp_core.Experiments.bench
      | rows -> Alcotest.failf "expected one row, got %d" (List.length rows))

let test_figures_render_gaps () =
  Gdp_core.Experiments.clear_cache ();
  Fun.protect ~finally:(fun () -> Gdp_core.Experiments.clear_cache ())
  @@ fun () ->
  with_injection "partition.infeasible@*" (fun () ->
      let p =
        Gdp_core.Experiments.performance
          ~benches:[ Benchsuite.Suite.find "fir" ]
          ~move_latency:5 ()
      in
      let out =
        Fmt.str "%a" (fun ppf p ->
            Gdp_core.Experiments.render_performance ppf p
              ~figure_name:"figure 7")
          p
      in
      Alcotest.(check bool)
        "failed benchmark renders as an explicit gap" true
        (contains out "n/a"))

(* ------------------------------------------------------------------ *)
(* Cache bounding                                                      *)

let test_clear_caches () =
  let b = Benchsuite.Suite.find "fir" in
  let p1 = Pipeline.prepare_default b in
  let p2 = Pipeline.prepare_default b in
  Alcotest.(check bool) "memoized" true (p1 == p2);
  Pipeline.clear_caches ();
  let p3 = Pipeline.prepare_default b in
  Alcotest.(check bool) "fresh after clear" true (p3 != p1)

(* ------------------------------------------------------------------ *)
(* Differential fuzzing                                                *)

let test_fuzz_smoke () =
  let summary =
    Gdp_fuzz.Fuzz.campaign ~latencies:[ 5 ] ~seed:0 ~count:5 ()
  in
  Alcotest.(check int) "five programs" 5 summary.Gdp_fuzz.Fuzz.programs;
  (match summary.Gdp_fuzz.Fuzz.mismatches with
  | [] -> ()
  | (m, _) :: _ ->
      Alcotest.failf "differential mismatch: %a" Gdp_fuzz.Fuzz.pp_mismatch m)

let test_fuzz_generator_deterministic () =
  Alcotest.(check string)
    "same seed, same program"
    (Gdp_fuzz.Gen_minic.gen_program_with_seed 7)
    (Gdp_fuzz.Gen_minic.gen_program_with_seed 7);
  Alcotest.(check bool)
    "different seeds diverge" true
    (Gdp_fuzz.Gen_minic.gen_program_with_seed 7
    <> Gdp_fuzz.Gen_minic.gen_program_with_seed 8)

let test_shrinker () =
  let keep s = contains s "keep" in
  Alcotest.(check string)
    "greedy line dropping reaches the 1-line core" "keep"
    (Gdp_fuzz.Fuzz.shrink ~budget:100 ~keep "a\nb\nkeep\nc");
  (* a zero budget must return the input unchanged *)
  Alcotest.(check string)
    "no budget, no shrinking" "a\nkeep"
    (Gdp_fuzz.Fuzz.shrink ~budget:0 ~keep "a\nkeep")

let test_crash_corpus_layout () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "gdp-corpus-test"
  in
  let m =
    {
      Gdp_fuzz.Fuzz.seed = 3;
      latency = 5;
      method_name = "gdp";
      reason = "synthetic";
    }
  in
  let paths =
    Gdp_fuzz.Fuzz.save_crash ~dir m ~source:"int x;\nvoid main() {}\n"
      ~shrunk:(Some "void main() {}\n")
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p))
    paths;
  Alcotest.(check int) "source, shrunk and report" 3 (List.length paths);
  List.iter Sys.remove paths;
  (try Sys.rmdir dir with Sys_error _ -> ())

let suite =
  [
    Alcotest.test_case "fault: spec parsing" `Quick test_parse_spec;
    Alcotest.test_case "fault: trigger semantics" `Quick
      test_trigger_semantics;
    Alcotest.test_case "fault: deterministic rand" `Quick
      test_rand_deterministic;
    Alcotest.test_case "fault: counters ledger" `Quick test_counts_ledger;
    Alcotest.test_case "verify: clustered interp failure" `Quick
      test_verify_clustered_interp_failure;
    Alcotest.test_case "verify: clustered output mismatch" `Quick
      test_verify_clustered_output_mismatch;
    Alcotest.test_case "verify: sim capacity violation" `Quick
      test_verify_sim_capacity_violation;
    Alcotest.test_case "verify: sim output mismatch" `Quick
      test_verify_sim_output_mismatch;
    Alcotest.test_case "verify: cycle model disagreement" `Quick
      test_verify_cycle_model_disagreement;
    Alcotest.test_case "verify: move model disagreement" `Quick
      test_verify_move_model_disagreement;
    Alcotest.test_case "verify: corrupt assignment rejected" `Quick
      test_verify_corrupt_assignment_detected;
    Alcotest.test_case "robust: identity without faults" `Quick
      test_robust_identity_without_faults;
    Alcotest.test_case "robust: degrades on infeasible partition" `Quick
      test_robust_degrades_on_infeasible_partition;
    Alcotest.test_case "robust: every point detected or inert" `Slow
      test_every_point_detected_or_inert;
    Alcotest.test_case "robust: fallback chain order" `Quick
      test_fallback_chain_order;
    Alcotest.test_case "experiments: error row" `Quick
      test_experiments_error_row;
    Alcotest.test_case "experiments: figures render gaps" `Quick
      test_figures_render_gaps;
    Alcotest.test_case "pipeline: clear_caches" `Quick test_clear_caches;
    Alcotest.test_case "fuzz: differential smoke" `Slow test_fuzz_smoke;
    Alcotest.test_case "fuzz: generator determinism" `Quick
      test_fuzz_generator_deterministic;
    Alcotest.test_case "fuzz: shrinker" `Quick test_shrinker;
    Alcotest.test_case "fuzz: crash corpus layout" `Quick
      test_crash_corpus_layout;
  ]
