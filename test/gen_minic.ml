(** Test-side view of the MiniC program generator (the generator itself
    lives in [lib/fuzz] so the [gdpc fuzz] harness shares it), plus the
    QCheck wrapper the property tests use. *)

include Gdp_fuzz.Gen_minic

(** QCheck arbitrary over seeds, printing the generated source on
    failure. *)
let arbitrary_program =
  QCheck.make
    ~print:(fun seed ->
      Printf.sprintf "seed %d:\n%s" seed (gen_program_with_seed seed))
    QCheck.Gen.(map (fun i -> i) (int_bound 1_000_000))
