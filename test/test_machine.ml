(** Machine-description tests. *)

module M = Vliw_machine

let test_paper_machine () =
  let m = M.paper_machine () in
  Alcotest.(check int) "clusters" 2 (M.num_clusters m);
  Alcotest.(check int) "move latency" 5 (M.move_latency m);
  Alcotest.(check int) "bus bandwidth" 1 (M.moves_per_cycle m);
  Alcotest.(check bool) "homogeneous" true (M.is_homogeneous m);
  let c = M.cluster_of m 0 in
  Alcotest.(check int) "int units" 2 (M.fu_count c M.FU_int);
  Alcotest.(check int) "float units" 1 (M.fu_count c M.FU_float);
  Alcotest.(check int) "memory units" 1 (M.fu_count c M.FU_memory);
  Alcotest.(check int) "branch units" 1 (M.fu_count c M.FU_branch)

let test_latency_variants () =
  List.iter
    (fun lat ->
      let m = M.paper_machine ~move_latency:lat () in
      Alcotest.(check int) "latency" lat (M.move_latency m))
    [ 1; 5; 10 ]

let test_totals () =
  let m = M.paper_machine () in
  Alcotest.(check int) "total ints" 4 (M.total_fu m M.FU_int);
  Alcotest.(check int) "total mems" 2 (M.total_fu m M.FU_memory)

let test_scaled () =
  let m = M.scaled_machine ~clusters:4 () in
  Alcotest.(check int) "clusters" 4 (M.num_clusters m);
  Alcotest.(check bool) "homogeneous" true (M.is_homogeneous m)

let test_invalid () =
  Alcotest.check_raises "no clusters" (Invalid_argument
    "Vliw_machine.v: machine needs at least one cluster") (fun () ->
      ignore
        (M.v ~name:"x" ~clusters:[||]
           ~network:{ M.topology = Bus; move_latency = 1; moves_per_cycle = 1 }
           ~latencies:M.itanium_latencies));
  Alcotest.check_raises "bad network" (Invalid_argument
    "Vliw_machine.v: invalid network parameters") (fun () ->
      ignore
        (M.v ~name:"x"
           ~clusters:[| M.cluster ~ints:1 ~floats:0 ~mems:1 ~branches:1 () |]
           ~network:{ M.topology = Bus; move_latency = 1; moves_per_cycle = 0 }
           ~latencies:M.itanium_latencies))

let test_invalid_clusters () =
  let net = { M.topology = M.Bus; move_latency = 1; moves_per_cycle = 1 } in
  Alcotest.check_raises "short FU array"
    (Invalid_argument
       "Vliw_machine.v: cluster 0 has 2 FU counts (need 4, one per kind)")
    (fun () ->
      ignore
        (M.v ~name:"x"
           ~clusters:[| { M.fu_counts = [| 1; 1 |]; memory_bytes = 1024 } |]
           ~network:net ~latencies:M.itanium_latencies));
  Alcotest.check_raises "negative FU count"
    (Invalid_argument "Vliw_machine.v: cluster 0: negative FU count")
    (fun () ->
      ignore
        (M.v ~name:"x"
           ~clusters:
             [| { M.fu_counts = [| 1; -1; 1; 1 |]; memory_bytes = 1024 } |]
           ~network:net ~latencies:M.itanium_latencies));
  Alcotest.check_raises "zero-memory cluster"
    (Invalid_argument "Vliw_machine.v: cluster 1 has no local memory")
    (fun () ->
      ignore
        (M.v ~name:"x"
           ~clusters:
             [|
               M.cluster ~ints:1 ~floats:1 ~mems:1 ~branches:1 ();
               M.cluster ~memory_bytes:0 ~ints:1 ~floats:1 ~mems:1 ~branches:1
                 ();
             |]
           ~network:net ~latencies:M.itanium_latencies));
  Alcotest.check_raises "mesh dims must tile the clusters"
    (Invalid_argument "Vliw_machine.v: mesh 2x2 does not cover 3 cluster(s)")
    (fun () ->
      ignore
        (M.v ~name:"x"
           ~clusters:
             (Array.make 3 (M.cluster ~ints:1 ~floats:1 ~mems:1 ~branches:1 ()))
           ~network:
             {
               M.topology = M.Mesh { rows = 2; cols = 2 };
               move_latency = 1;
               moves_per_cycle = 1;
             }
           ~latencies:M.itanium_latencies))

(* ------------------------------------------------------------------ *)
(* Topologies: link counts, deterministic routes, hop distances        *)

let machine_on ~clusters topology =
  M.v
    ~name:(Fmt.str "%d-%s" clusters (M.topology_name topology))
    ~clusters:
      (Array.make clusters (M.cluster ~ints:2 ~floats:1 ~mems:1 ~branches:1 ()))
    ~network:{ M.topology; move_latency = 5; moves_per_cycle = 1 }
    ~latencies:M.itanium_latencies

let test_bus_routes () =
  let m = M.paper_machine () in
  Alcotest.(check int) "one slot" 1 (M.num_link_slots m);
  Alcotest.(check int) "one link" 1 (M.num_links m);
  Alcotest.(check (list int)) "route is the bus" [ 0 ]
    (M.route_links m ~src:0 ~dst:1);
  Alcotest.(check int) "one hop" 1 (M.route_hops m ~src:1 ~dst:0);
  Alcotest.(check int) "self needs no hop" 0 (M.route_hops m ~src:1 ~dst:1);
  Alcotest.(check int) "bus latency is the seed latency" 5
    (M.route_latency m ~src:0 ~dst:1);
  Alcotest.(check int) "max hops" 1 (M.max_hops m)

let test_crossbar_routes () =
  let m = machine_on ~clusters:4 M.Crossbar in
  Alcotest.(check int) "n*n slot table" 16 (M.num_link_slots m);
  Alcotest.(check int) "n*(n-1) links" 12 (M.num_links m);
  Alcotest.(check (list int)) "direct link" [ (2 * 4) + 3 ]
    (M.route_links m ~src:2 ~dst:3);
  Alcotest.(check int) "always one hop" 1 (M.route_hops m ~src:0 ~dst:3);
  Alcotest.(check int) "max hops" 1 (M.max_hops m)

let test_ring_routes () =
  let m = machine_on ~clusters:8 M.Ring in
  Alcotest.(check int) "2n links" 16 (M.num_links m);
  (* shortest direction each way *)
  Alcotest.(check int) "0->3 goes clockwise" 3 (M.route_hops m ~src:0 ~dst:3);
  Alcotest.(check (list int)) "0->3 route"
    [ 1; (1 * 8) + 2; (2 * 8) + 3 ]
    (M.route_links m ~src:0 ~dst:3);
  Alcotest.(check int) "0->5 goes the short way round" 3
    (M.route_hops m ~src:0 ~dst:5);
  Alcotest.(check (list int)) "0->5 route"
    [ 7; (7 * 8) + 6; (6 * 8) + 5 ]
    (M.route_links m ~src:0 ~dst:5);
  (* the n/2 tie breaks clockwise *)
  Alcotest.(check (list int)) "0->4 tie is clockwise"
    [ 1; (1 * 8) + 2; (2 * 8) + 3; (3 * 8) + 4 ]
    (M.route_links m ~src:0 ~dst:4);
  Alcotest.(check int) "max hops" 4 (M.max_hops m);
  Alcotest.(check int) "hop latency scales" 15 (M.route_latency m ~src:0 ~dst:3)

let test_mesh_routes () =
  let m = machine_on ~clusters:16 (M.Mesh { rows = 4; cols = 4 }) in
  Alcotest.(check int) "grid links" 48 (M.num_links m);
  (* X-then-Y over a row-major grid: 0 -> 10 = (0,0) -> (2,2) *)
  Alcotest.(check int) "manhattan distance" 4 (M.route_hops m ~src:0 ~dst:10);
  Alcotest.(check (list int)) "route goes X first"
    [ 1; (1 * 16) + 2; (2 * 16) + 6; (6 * 16) + 10 ]
    (M.route_links m ~src:0 ~dst:10);
  Alcotest.(check int) "corner to corner" 6 (M.route_hops m ~src:0 ~dst:15);
  Alcotest.(check int) "max hops" 6 (M.max_hops m)

let test_route_endpoints () =
  (* every route is a contiguous walk from src to dst on every topology *)
  List.iter
    (fun m ->
      let n = M.num_clusters m in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let links = M.route_links m ~src ~dst in
          Alcotest.(check int)
            (Fmt.str "%s %d->%d: hops = links" m.M.name src dst)
            (M.route_hops m ~src ~dst)
            (List.length links);
          if M.topology m <> M.Bus then begin
            let rec walk at = function
              | [] ->
                  Alcotest.(check int)
                    (Fmt.str "%s %d->%d: ends at dst" m.M.name src dst)
                    dst at
              | link :: rest ->
                  Alcotest.(check int)
                    (Fmt.str "%s %d->%d: contiguous" m.M.name src dst)
                    at (link / n);
                  walk (link mod n) rest
            in
            if links <> [] then walk src links
          end
        done
      done)
    [
      machine_on ~clusters:5 M.Ring;
      machine_on ~clusters:6 (M.Mesh { rows = 2; cols = 3 });
      machine_on ~clusters:4 M.Crossbar;
      M.paper_machine ();
    ]

let test_itanium_latencies () =
  let l = M.itanium_latencies in
  Alcotest.(check int) "load" 2 l.M.load;
  Alcotest.(check bool) "mul longer than alu" true (l.M.int_mul > l.M.int_alu);
  Alcotest.(check bool) "fdiv longest" true
    (l.M.float_div >= l.M.float_mul && l.M.float_div >= l.M.int_div)

let suite =
  [
    Alcotest.test_case "paper machine shape" `Quick test_paper_machine;
    Alcotest.test_case "latency variants" `Quick test_latency_variants;
    Alcotest.test_case "fu totals" `Quick test_totals;
    Alcotest.test_case "scaled machine" `Quick test_scaled;
    Alcotest.test_case "invalid machines rejected" `Quick test_invalid;
    Alcotest.test_case "invalid clusters rejected" `Quick test_invalid_clusters;
    Alcotest.test_case "bus routes" `Quick test_bus_routes;
    Alcotest.test_case "crossbar routes" `Quick test_crossbar_routes;
    Alcotest.test_case "ring routes" `Quick test_ring_routes;
    Alcotest.test_case "mesh routes" `Quick test_mesh_routes;
    Alcotest.test_case "routes walk src to dst" `Quick test_route_endpoints;
    Alcotest.test_case "itanium-like latencies" `Quick test_itanium_latencies;
  ]
