(** The gdpcd service stack: adversarial Minijson round-trips, the
    length-prefixed frame codec, the LRU artifact cache, the wire
    protocol, and a forked end-to-end daemon (duplicate submissions hit
    the cache, served results are byte-identical to inline runs,
    deadlines and shutdown behave). *)

module Frame = Service.Frame
module Cache = Service.Cache
module Protocol = Service.Protocol
module Client = Service.Client
module Loadgen = Service.Loadgen
module Settings = Gdp_core.Pipeline.Settings

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Minijson: adversarial round-trips                                   *)

let roundtrip doc =
  match Minijson.parse (Minijson.encode doc) with
  | Ok doc' -> doc'
  | Error m -> Alcotest.failf "reparse failed: %s" m

let test_minijson_control_chars () =
  let nasty =
    [
      "\x00\x01\x02\x1f";
      "line\nbreak\ttab\rcr";
      "quote\"backslash\\slash/";
      "\x7f high bit stays out of escapes";
      String.init 32 Char.chr;
    ]
  in
  List.iter
    (fun s ->
      let doc = Minijson.Str s in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %S" s)
        true
        (roundtrip doc = doc))
    nasty

let test_minijson_unicode_escapes () =
  (* \\u below 0x80 decodes to the character itself *)
  (match Minijson.parse "\"\\u0041\\u000a\\u0009\"" with
  | Ok (Minijson.Str str) -> Alcotest.(check string) "decoded" "A\n\t" str
  | Ok _ -> Alcotest.fail "not a string"
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (* non-ASCII escapes degrade to '?' rather than corrupting the buffer *)
  (match Minijson.parse "\"\\u00e9\\uffff\"" with
  | Ok (Minijson.Str str) -> Alcotest.(check string) "degraded" "??" str
  | Ok _ -> Alcotest.fail "not a string"
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (* malformed escapes are errors, not silent junk *)
  List.iter
    (fun bad ->
      match Minijson.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "\"\\u00\""; "\"\\uzzzz\""; "\"\\q\""; "\"unterminated" ]

let test_minijson_deep_nesting () =
  let depth = 200 in
  let rec build n = if n = 0 then Minijson.int 7 else Minijson.list [ build (n - 1) ] in
  let doc = build depth in
  Alcotest.(check bool) "deep list round-trips" true (roundtrip doc = doc);
  let rec build_obj n =
    if n = 0 then Minijson.bool true else Minijson.obj [ ("k", build_obj (n - 1)) ]
  in
  let doc = build_obj depth in
  Alcotest.(check bool) "deep object round-trips" true (roundtrip doc = doc)

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let test_frame_roundtrip () =
  with_pipe (fun r w ->
      let docs =
        [
          Minijson.obj [ ("op", Minijson.str "ping") ];
          Minijson.Str (String.init 32 Char.chr);
          Minijson.list (List.init 100 Minijson.int);
        ]
      in
      List.iter (Frame.write w) docs;
      List.iter
        (fun doc ->
          match Frame.read r with
          | Ok got -> Alcotest.(check bool) "frame equal" true (got = doc)
          | Error e -> Alcotest.failf "read failed: %s" (Frame.error_to_string e))
        docs)

let test_frame_truncation () =
  (* close mid-header *)
  with_pipe (fun r w ->
      ignore (Unix.write_substring w "\x00\x00" 0 2);
      Unix.close w;
      match Frame.read r with
      | Error Frame.Truncated -> ()
      | Error e -> Alcotest.failf "wanted Truncated, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "read a frame from a truncated header");
  (* close mid-payload *)
  with_pipe (fun r w ->
      let partial = "\x00\x00\x00\x0a{\"x\"" in
      ignore (Unix.write_substring w partial 0 (String.length partial));
      Unix.close w;
      match Frame.read r with
      | Error Frame.Truncated -> ()
      | Error e -> Alcotest.failf "wanted Truncated, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "read a frame from a truncated payload");
  (* clean close between frames is Eof, not an error *)
  with_pipe (fun r w ->
      Frame.write w (Minijson.int 1);
      Unix.close w;
      (match Frame.read r with
      | Ok v -> Alcotest.(check (option int)) "first" (Some 1) (Minijson.to_int v)
      | Error e -> Alcotest.failf "read failed: %s" (Frame.error_to_string e));
      match Frame.read r with
      | Error Frame.Eof -> ()
      | Error e -> Alcotest.failf "wanted Eof, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "read a frame after close")

let test_frame_oversize () =
  (* the reader rejects from the header, before buffering a payload *)
  with_pipe (fun r w ->
      ignore (Unix.write_substring w "\x7f\xff\xff\xff" 0 4);
      match Frame.read ~max_frame:1024 r with
      | Error (Frame.Oversized { size; limit }) ->
          Alcotest.(check int) "declared size" 0x7fffffff size;
          Alcotest.(check int) "limit" 1024 limit
      | Error e -> Alcotest.failf "wanted Oversized, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "accepted an oversized frame");
  (* the writer refuses to emit a frame the peer would reject *)
  with_pipe (fun _r w ->
      match Frame.write ~max_frame:8 w (Minijson.str (String.make 64 'x')) with
      | () -> Alcotest.fail "wrote an oversized frame"
      | exception Invalid_argument _ -> ())

let test_frame_decoder_incremental () =
  let doc1 = Minijson.obj [ ("a", Minijson.int 1) ] in
  let doc2 = Minijson.list [ Minijson.str "two" ] in
  let bytes = Buffer.create 64 in
  with_pipe (fun r w ->
      Frame.write w doc1;
      Frame.write w doc2;
      Unix.close w;
      let chunk = Bytes.create 256 in
      let rec slurp () =
        match Unix.read r chunk 0 256 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes bytes chunk 0 n;
            slurp ()
      in
      slurp ());
  let all = Buffer.to_bytes bytes in
  (* feed byte by byte: frames must pop exactly when complete *)
  let d = Frame.Decoder.create () in
  let got = ref [] in
  Bytes.iteri
    (fun i _ ->
      Frame.Decoder.feed d all i 1;
      match Frame.Decoder.next d with
      | `Frame f -> got := f :: !got
      | `Awaiting -> ()
      | `Error e -> Alcotest.failf "decoder error: %s" (Frame.error_to_string e))
    all;
  Alcotest.(check bool) "both frames" true (List.rev !got = [ doc1; doc2 ]);
  Alcotest.(check int) "nothing buffered" 0 (Frame.Decoder.buffered d);
  (* one big feed: next pops them one at a time *)
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed d all 0 (Bytes.length all);
  (match Frame.Decoder.next d with
  | `Frame f -> Alcotest.(check bool) "first" true (f = doc1)
  | _ -> Alcotest.fail "expected first frame");
  (match Frame.Decoder.next d with
  | `Frame f -> Alcotest.(check bool) "second" true (f = doc2)
  | _ -> Alcotest.fail "expected second frame");
  match Frame.Decoder.next d with
  | `Awaiting -> ()
  | _ -> Alcotest.fail "expected Awaiting after draining"

let test_frame_decoder_oversize_sticky () =
  let d = Frame.Decoder.create ~max_frame:16 () in
  let header = Bytes.of_string "\x00\x00\x10\x00" in
  Frame.Decoder.feed d header 0 4;
  (match Frame.Decoder.next d with
  | `Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "expected Oversized from the header alone");
  (* the error is sticky: more bytes don't resurrect the stream *)
  Frame.Decoder.feed d (Bytes.make 8 'j') 0 8;
  match Frame.Decoder.next d with
  | `Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "expected the decoder to stay failed"

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_lru () =
  let c = Cache.create ~capacity:3 () in
  Cache.add c "a" (Minijson.int 1);
  Cache.add c "b" (Minijson.int 2);
  Cache.add c "c" (Minijson.int 3);
  (* touch "a" so "b" is now least recently used *)
  Alcotest.(check bool) "a hit" true (Cache.find c "a" <> None);
  Cache.add c "d" (Minijson.int 4);
  Alcotest.(check int) "bounded" 3 (Cache.length c);
  Alcotest.(check bool) "b evicted" false (Cache.mem c "b");
  Alcotest.(check bool) "a survived" true (Cache.mem c "a");
  Alcotest.(check bool) "c survived" true (Cache.mem c "c");
  Alcotest.(check bool) "d resident" true (Cache.mem c "d");
  (* replacing refreshes, never grows *)
  Cache.add c "c" (Minijson.int 33);
  Alcotest.(check int) "still bounded" 3 (Cache.length c);
  (match Cache.find c "c" with
  | Some v -> Alcotest.(check (option int)) "replaced" (Some 33) (Minijson.to_int v)
  | None -> Alcotest.fail "c vanished");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.length c);
  Alcotest.(check int) "tallies survive clear" 2 (Cache.stats c).Cache.hits

let test_cache_misses_counted () =
  let c = Cache.create ~capacity:2 () in
  Alcotest.(check bool) "miss" true (Cache.find c "nope" = None);
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "no hits" 0 s.Cache.hits

let test_cache_digest_no_aliasing () =
  (* length-prefixed parts: ["ab";"c"] and ["a";"bc"] must differ *)
  let k1 = Cache.digest_key ~parts:[ "ab"; "c" ] in
  let k2 = Cache.digest_key ~parts:[ "a"; "bc" ] in
  Alcotest.(check bool) "no concatenation aliasing" false (k1 = k2);
  Alcotest.(check string)
    "deterministic" k1
    (Cache.digest_key ~parts:[ "ab"; "c" ])

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let sample_source =
  {|
void main() {
  int n = 8;
  int *a = malloc(8);
  for (int i = 0; i < n; i = i + 1) { a[i] = in(i) * 2; }
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
  out(s);
}
|}

let sample_job ?(id = "t1") ?(deadline_ms = None) ?(verify = false) () =
  {
    Protocol.id;
    source = sample_source;
    input = [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    settings = Settings.default Partition.Methods.Gdp;
    deadline_ms;
    verify;
  }

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Submit (sample_job ~deadline_ms:(Some 5000) ~verify:true ());
      Protocol.Cancel { id = "t1" };
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "request round-trip" true (req = req')
      | Error m -> Alcotest.failf "rejected own encoding: %s" m)
    reqs;
  let resps =
    [
      Protocol.Result { id = "t1"; cached = true; result = Minijson.int 5 };
      Protocol.Failed { id = "t1"; reason = "nope" };
      Protocol.Cancelled { id = "t1" };
      Protocol.Pong;
      Protocol.Stats_reply (Minijson.obj [ ("served", Minijson.int 3) ]);
      Protocol.Shutting_down;
      Protocol.Error_reply "bad frame";
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_json (Protocol.response_to_json resp) with
      | Ok resp' -> Alcotest.(check bool) "response round-trip" true (resp = resp')
      | Error m -> Alcotest.failf "rejected own encoding: %s" m)
    resps

let test_protocol_rejections () =
  (match Protocol.request_of_json (Minijson.obj [ ("op", Minijson.str "ping") ]) with
  | Ok _ -> Alcotest.fail "accepted a schema-less request"
  | Error m ->
      Alcotest.(check bool) "names schema" true (contains m "schema"));
  (match
     Protocol.request_of_json
       (Minijson.obj
          [
            ("schema", Minijson.str Protocol.schema);
            ("op", Minijson.str "frobnicate");
          ])
   with
  | Ok _ -> Alcotest.fail "accepted an unknown op"
  | Error m -> Alcotest.(check bool) "names op" true (contains m "frobnicate"));
  (* an unknown settings field inside a submit is rejected by name *)
  let doc = Protocol.request_to_json (Protocol.Submit (sample_job ())) in
  let doc =
    match doc with
    | Minijson.Obj fields ->
        Minijson.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "settings", Minijson.Obj fs ->
                   (k, Minijson.Obj (fs @ [ ("colour", Minijson.int 1) ]))
               | _ -> (k, v))
             fields)
    | d -> d
  in
  match Protocol.request_of_json doc with
  | Ok _ -> Alcotest.fail "accepted a typo'd settings field"
  | Error m -> Alcotest.(check bool) "names the field" true (contains m "colour")

let test_protocol_cache_key () =
  let j = sample_job () in
  (* id and deadline do not participate in the content address *)
  Alcotest.(check string)
    "id irrelevant" (Protocol.cache_key j)
    (Protocol.cache_key { j with Protocol.id = "other" });
  Alcotest.(check string)
    "deadline irrelevant" (Protocol.cache_key j)
    (Protocol.cache_key { j with Protocol.deadline_ms = Some 9 });
  (* source, input and settings all do *)
  Alcotest.(check bool)
    "source matters" false
    (Protocol.cache_key j
    = Protocol.cache_key { j with Protocol.source = j.Protocol.source ^ " " });
  Alcotest.(check bool)
    "input matters" false
    (Protocol.cache_key j
    = Protocol.cache_key { j with Protocol.input = [ 9 ] });
  Alcotest.(check bool)
    "settings matter" false
    (Protocol.cache_key j
    = Protocol.cache_key
        {
          j with
          Protocol.settings =
            { j.Protocol.settings with Settings.move_latency = 10 };
        })

let test_protocol_evaluate_deterministic () =
  match (Protocol.evaluate_job (sample_job ()), Protocol.evaluate_job (sample_job ())) with
  | Ok a, Ok b ->
      Alcotest.(check string)
        "same bytes" (Minijson.encode a) (Minijson.encode b);
      Alcotest.(check (option string))
        "gdp artifact" (Some "gdp-artifact/1")
        (Option.bind (Minijson.member "schema" a) Minijson.to_string)
  | Error m, _ | _, Error m -> Alcotest.failf "evaluate_job failed: %s" m

(* ------------------------------------------------------------------ *)
(* End-to-end daemon                                                   *)

let test_server_end_to_end () =
  Loadgen.with_local_server ~jobs:2 (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (* ping *)
          (match Client.rpc cl Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | Ok _ -> Alcotest.fail "expected Pong"
          | Error m -> Alcotest.failf "ping failed: %s" m);
          (* first submission computes, the identical resubmit hits *)
          let first =
            match Client.submit cl (sample_job ~id:"e2e-1" ()) with
            | Ok (Protocol.Result { cached; result; _ }) ->
                Alcotest.(check bool) "first is a miss" false cached;
                result
            | Ok (Protocol.Failed { reason; _ }) ->
                Alcotest.failf "job failed: %s" reason
            | Ok _ -> Alcotest.fail "unexpected response"
            | Error m -> Alcotest.failf "submit failed: %s" m
          in
          let second =
            match Client.submit cl (sample_job ~id:"e2e-2" ()) with
            | Ok (Protocol.Result { cached; result; _ }) ->
                Alcotest.(check bool) "resubmit is a hit" true cached;
                result
            | Ok _ -> Alcotest.fail "unexpected response"
            | Error m -> Alcotest.failf "resubmit failed: %s" m
          in
          Alcotest.(check string)
            "hit returns identical bytes" (Minijson.encode first)
            (Minijson.encode second);
          (* ... and both match the inline evaluation byte for byte *)
          (match Protocol.evaluate_job (sample_job ()) with
          | Ok inline_result ->
              Alcotest.(check string)
                "served = inline" (Minijson.encode inline_result)
                (Minijson.encode first)
          | Error m -> Alcotest.failf "inline evaluation failed: %s" m);
          (* an already-expired deadline fails deterministically *)
          (match
             Client.submit cl (sample_job ~id:"e2e-3" ~deadline_ms:(Some 0) ())
           with
          | Ok (Protocol.Failed { reason; _ }) ->
              Alcotest.(check bool)
                "deadline reason" true
                (contains reason "deadline")
          | Ok _ -> Alcotest.fail "expected a deadline failure"
          | Error m -> Alcotest.failf "deadline submit failed: %s" m);
          (* a broken program fails cleanly, not fatally *)
          (match
             Client.submit cl
               { (sample_job ~id:"e2e-4" ()) with Protocol.source = "int x = ;" }
           with
          | Ok (Protocol.Failed _) -> ()
          | Ok _ -> Alcotest.fail "expected a compile failure"
          | Error m -> Alcotest.failf "bad-source submit failed: %s" m);
          (* cancelling an unknown job is a per-job failure *)
          (match Client.rpc cl (Protocol.Cancel { id = "ghost" }) with
          | Ok (Protocol.Failed { reason; _ }) ->
              Alcotest.(check bool) "unknown id" true (contains reason "unknown")
          | Ok _ -> Alcotest.fail "expected Failed for an unknown cancel"
          | Error m -> Alcotest.failf "cancel failed: %s" m);
          (* stats reflect the traffic above *)
          match Client.rpc cl Protocol.Stats with
          | Ok (Protocol.Stats_reply stats) ->
              let geti k = Option.bind (Minijson.member k stats) Minijson.to_int in
              Alcotest.(check bool)
                "served at least 2"
                true
                (match geti "served" with Some n -> n >= 2 | None -> false);
              let cache_hits =
                Option.bind (Minijson.member "cache" stats) (fun c ->
                    Option.bind (Minijson.member "hits" c) Minijson.to_int)
              in
              Alcotest.(check bool)
                "at least one cache hit" true
                (match cache_hits with Some n -> n >= 1 | None -> false)
          | Ok _ -> Alcotest.fail "expected Stats_reply"
          | Error m -> Alcotest.failf "stats failed: %s" m))

let test_server_rejects_garbage () =
  Loadgen.with_local_server ~jobs:1 (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (* valid frame, wrong schema: per-request error, connection lives *)
          Frame.write (Client.fd cl)
            (Minijson.obj [ ("schema", Minijson.str "nope/1") ]);
          (match Client.recv cl with
          | Ok (Protocol.Error_reply m) ->
              Alcotest.(check bool) "names schema" true (contains m "schema")
          | Ok _ -> Alcotest.fail "expected Error_reply"
          | Error m -> Alcotest.failf "recv failed: %s" m);
          (* the connection survived: ping still answers *)
          match Client.rpc cl Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | Ok _ -> Alcotest.fail "expected Pong after protocol error"
          | Error m -> Alcotest.failf "ping after error failed: %s" m))

let test_loadgen_closed_loop () =
  Loadgen.with_local_server ~jobs:2 (fun endpoint ->
      let summary =
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.endpoint;
            connections = 2;
            requests = 8;
            duplicate_ratio = 1.0;
            seed = 7;
          }
      in
      Alcotest.(check int) "all issued" 8 summary.Loadgen.requests;
      Alcotest.(check int) "all succeeded" 8 summary.Loadgen.succeeded;
      Alcotest.(check int) "none failed" 0 summary.Loadgen.failed;
      (* ratio 1.0 draws all 8 from a 4-program set: at least half must
         land in the cache (or coalesce onto an in-flight twin) *)
      Alcotest.(check bool)
        "cache hits happen" true
        (summary.Loadgen.cache_hits >= 4);
      Alcotest.(check bool)
        "throughput positive" true
        (summary.Loadgen.throughput_cps > 0.);
      (* the summary is gate-compatible with itself *)
      let json = Loadgen.summary_to_json summary in
      match Gdp_report.Regress.service_of_json json with
      | Error m -> Alcotest.failf "summary not gate-readable: %s" m
      | Ok b ->
          Alcotest.(check (list string))
            "self-check passes" []
            (List.map
               (fun i -> Fmt.str "%a" Gdp_report.Regress.pp_issue i)
               (Gdp_report.Regress.check_service ~tolerance:10. ~baseline:b b));
          (* a collapsed current run trips every gate *)
          let worse =
            {
              b with
              Gdp_report.Regress.sv_throughput_cps = b.Gdp_report.Regress.sv_throughput_cps /. 10.;
              sv_p99_us = (b.Gdp_report.Regress.sv_p99_us *. 10.) +. 10000.;
              sv_hit_rate = 0.;
            }
          in
          Alcotest.(check bool)
            "regressions detected" true
            (List.length
               (Gdp_report.Regress.check_service ~tolerance:10. ~baseline:b worse)
            >= 2))

let suite =
  [
    Alcotest.test_case "minijson: control chars" `Quick test_minijson_control_chars;
    Alcotest.test_case "minijson: unicode escapes" `Quick
      test_minijson_unicode_escapes;
    Alcotest.test_case "minijson: deep nesting" `Quick test_minijson_deep_nesting;
    Alcotest.test_case "frame: round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: truncation" `Quick test_frame_truncation;
    Alcotest.test_case "frame: oversize rejection" `Quick test_frame_oversize;
    Alcotest.test_case "frame: incremental decoder" `Quick
      test_frame_decoder_incremental;
    Alcotest.test_case "frame: decoder errors sticky" `Quick
      test_frame_decoder_oversize_sticky;
    Alcotest.test_case "cache: LRU bound and recency" `Quick test_cache_lru;
    Alcotest.test_case "cache: misses counted" `Quick test_cache_misses_counted;
    Alcotest.test_case "cache: digest aliasing" `Quick
      test_cache_digest_no_aliasing;
    Alcotest.test_case "protocol: round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol: rejections" `Quick test_protocol_rejections;
    Alcotest.test_case "protocol: cache key" `Quick test_protocol_cache_key;
    Alcotest.test_case "protocol: evaluate deterministic" `Quick
      test_protocol_evaluate_deterministic;
    Alcotest.test_case "server: end to end" `Slow test_server_end_to_end;
    Alcotest.test_case "server: garbage handling" `Slow
      test_server_rejects_garbage;
    Alcotest.test_case "loadgen: closed loop" `Slow test_loadgen_closed_loop;
  ]
