(** The gdpcd service stack: adversarial Minijson round-trips, the
    length-prefixed frame codec, the LRU artifact cache, the wire
    protocol, and a forked end-to-end daemon (duplicate submissions hit
    the cache, served results are byte-identical to inline runs,
    deadlines and shutdown behave). *)

module Frame = Service.Frame
module Cache = Service.Cache
module Protocol = Service.Protocol
module Client = Service.Client
module Loadgen = Service.Loadgen
module Settings = Gdp_core.Pipeline.Settings

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Minijson: adversarial round-trips                                   *)

let roundtrip doc =
  match Minijson.parse (Minijson.encode doc) with
  | Ok doc' -> doc'
  | Error m -> Alcotest.failf "reparse failed: %s" m

let test_minijson_control_chars () =
  let nasty =
    [
      "\x00\x01\x02\x1f";
      "line\nbreak\ttab\rcr";
      "quote\"backslash\\slash/";
      "\x7f high bit stays out of escapes";
      String.init 32 Char.chr;
    ]
  in
  List.iter
    (fun s ->
      let doc = Minijson.Str s in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %S" s)
        true
        (roundtrip doc = doc))
    nasty

let test_minijson_unicode_escapes () =
  (* \\u below 0x80 decodes to the character itself *)
  (match Minijson.parse "\"\\u0041\\u000a\\u0009\"" with
  | Ok (Minijson.Str str) -> Alcotest.(check string) "decoded" "A\n\t" str
  | Ok _ -> Alcotest.fail "not a string"
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (* non-ASCII escapes degrade to '?' rather than corrupting the buffer *)
  (match Minijson.parse "\"\\u00e9\\uffff\"" with
  | Ok (Minijson.Str str) -> Alcotest.(check string) "degraded" "??" str
  | Ok _ -> Alcotest.fail "not a string"
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (* malformed escapes are errors, not silent junk *)
  List.iter
    (fun bad ->
      match Minijson.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "\"\\u00\""; "\"\\uzzzz\""; "\"\\q\""; "\"unterminated" ]

let test_minijson_deep_nesting () =
  let depth = 200 in
  let rec build n = if n = 0 then Minijson.int 7 else Minijson.list [ build (n - 1) ] in
  let doc = build depth in
  Alcotest.(check bool) "deep list round-trips" true (roundtrip doc = doc);
  let rec build_obj n =
    if n = 0 then Minijson.bool true else Minijson.obj [ ("k", build_obj (n - 1)) ]
  in
  let doc = build_obj depth in
  Alcotest.(check bool) "deep object round-trips" true (roundtrip doc = doc)

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let test_frame_roundtrip () =
  with_pipe (fun r w ->
      let docs =
        [
          Minijson.obj [ ("op", Minijson.str "ping") ];
          Minijson.Str (String.init 32 Char.chr);
          Minijson.list (List.init 100 Minijson.int);
        ]
      in
      List.iter (Frame.write w) docs;
      List.iter
        (fun doc ->
          match Frame.read r with
          | Ok got -> Alcotest.(check bool) "frame equal" true (got = doc)
          | Error e -> Alcotest.failf "read failed: %s" (Frame.error_to_string e))
        docs)

let test_frame_truncation () =
  (* close mid-header *)
  with_pipe (fun r w ->
      ignore (Unix.write_substring w "\x00\x00" 0 2);
      Unix.close w;
      match Frame.read r with
      | Error Frame.Truncated -> ()
      | Error e -> Alcotest.failf "wanted Truncated, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "read a frame from a truncated header");
  (* close mid-payload *)
  with_pipe (fun r w ->
      let partial = "\x00\x00\x00\x0a{\"x\"" in
      ignore (Unix.write_substring w partial 0 (String.length partial));
      Unix.close w;
      match Frame.read r with
      | Error Frame.Truncated -> ()
      | Error e -> Alcotest.failf "wanted Truncated, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "read a frame from a truncated payload");
  (* clean close between frames is Eof, not an error *)
  with_pipe (fun r w ->
      Frame.write w (Minijson.int 1);
      Unix.close w;
      (match Frame.read r with
      | Ok v -> Alcotest.(check (option int)) "first" (Some 1) (Minijson.to_int v)
      | Error e -> Alcotest.failf "read failed: %s" (Frame.error_to_string e));
      match Frame.read r with
      | Error Frame.Eof -> ()
      | Error e -> Alcotest.failf "wanted Eof, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "read a frame after close")

let test_frame_oversize () =
  (* the reader rejects from the header, before buffering a payload *)
  with_pipe (fun r w ->
      ignore (Unix.write_substring w "\x7f\xff\xff\xff" 0 4);
      match Frame.read ~max_frame:1024 r with
      | Error (Frame.Oversized { size; limit }) ->
          Alcotest.(check int) "declared size" 0x7fffffff size;
          Alcotest.(check int) "limit" 1024 limit
      | Error e -> Alcotest.failf "wanted Oversized, got %s" (Frame.error_to_string e)
      | Ok _ -> Alcotest.fail "accepted an oversized frame");
  (* the writer refuses to emit a frame the peer would reject *)
  with_pipe (fun _r w ->
      match Frame.write ~max_frame:8 w (Minijson.str (String.make 64 'x')) with
      | () -> Alcotest.fail "wrote an oversized frame"
      | exception Invalid_argument _ -> ())

let test_frame_decoder_incremental () =
  let doc1 = Minijson.obj [ ("a", Minijson.int 1) ] in
  let doc2 = Minijson.list [ Minijson.str "two" ] in
  let bytes = Buffer.create 64 in
  with_pipe (fun r w ->
      Frame.write w doc1;
      Frame.write w doc2;
      Unix.close w;
      let chunk = Bytes.create 256 in
      let rec slurp () =
        match Unix.read r chunk 0 256 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes bytes chunk 0 n;
            slurp ()
      in
      slurp ());
  let all = Buffer.to_bytes bytes in
  (* feed byte by byte: frames must pop exactly when complete *)
  let d = Frame.Decoder.create () in
  let got = ref [] in
  Bytes.iteri
    (fun i _ ->
      Frame.Decoder.feed d all i 1;
      match Frame.Decoder.next d with
      | `Frame f -> got := f :: !got
      | `Awaiting -> ()
      | `Error e -> Alcotest.failf "decoder error: %s" (Frame.error_to_string e))
    all;
  Alcotest.(check bool) "both frames" true (List.rev !got = [ doc1; doc2 ]);
  Alcotest.(check int) "nothing buffered" 0 (Frame.Decoder.buffered d);
  (* one big feed: next pops them one at a time *)
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed d all 0 (Bytes.length all);
  (match Frame.Decoder.next d with
  | `Frame f -> Alcotest.(check bool) "first" true (f = doc1)
  | _ -> Alcotest.fail "expected first frame");
  (match Frame.Decoder.next d with
  | `Frame f -> Alcotest.(check bool) "second" true (f = doc2)
  | _ -> Alcotest.fail "expected second frame");
  match Frame.Decoder.next d with
  | `Awaiting -> ()
  | _ -> Alcotest.fail "expected Awaiting after draining"

let test_frame_decoder_oversize_sticky () =
  let d = Frame.Decoder.create ~max_frame:16 () in
  let header = Bytes.of_string "\x00\x00\x10\x00" in
  Frame.Decoder.feed d header 0 4;
  (match Frame.Decoder.next d with
  | `Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "expected Oversized from the header alone");
  (* the error is sticky: more bytes don't resurrect the stream *)
  Frame.Decoder.feed d (Bytes.make 8 'j') 0 8;
  match Frame.Decoder.next d with
  | `Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "expected the decoder to stay failed"

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_lru () =
  let c = Cache.create ~capacity:3 () in
  Cache.add c "a" (Minijson.int 1);
  Cache.add c "b" (Minijson.int 2);
  Cache.add c "c" (Minijson.int 3);
  (* touch "a" so "b" is now least recently used *)
  Alcotest.(check bool) "a hit" true (Cache.find c "a" <> None);
  Cache.add c "d" (Minijson.int 4);
  Alcotest.(check int) "bounded" 3 (Cache.length c);
  Alcotest.(check bool) "b evicted" false (Cache.mem c "b");
  Alcotest.(check bool) "a survived" true (Cache.mem c "a");
  Alcotest.(check bool) "c survived" true (Cache.mem c "c");
  Alcotest.(check bool) "d resident" true (Cache.mem c "d");
  (* replacing refreshes, never grows *)
  Cache.add c "c" (Minijson.int 33);
  Alcotest.(check int) "still bounded" 3 (Cache.length c);
  (match Cache.find c "c" with
  | Some v -> Alcotest.(check (option int)) "replaced" (Some 33) (Minijson.to_int v)
  | None -> Alcotest.fail "c vanished");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.length c);
  Alcotest.(check int) "tallies survive clear" 2 (Cache.stats c).Cache.hits

let test_cache_misses_counted () =
  let c = Cache.create ~capacity:2 () in
  Alcotest.(check bool) "miss" true (Cache.find c "nope" = None);
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "no hits" 0 s.Cache.hits

let test_cache_digest_no_aliasing () =
  (* length-prefixed parts: ["ab";"c"] and ["a";"bc"] must differ *)
  let k1 = Cache.digest_key ~parts:[ "ab"; "c" ] in
  let k2 = Cache.digest_key ~parts:[ "a"; "bc" ] in
  Alcotest.(check bool) "no concatenation aliasing" false (k1 = k2);
  Alcotest.(check string)
    "deterministic" k1
    (Cache.digest_key ~parts:[ "ab"; "c" ])

(* ------------------------------------------------------------------ *)
(* Durable store                                                       *)

module Store = Service.Store

let temp_dir () =
  let d = Filename.temp_file "gdp-store" ".d" in
  Unix.unlink d;
  Unix.mkdir d 0o700;
  d

let kdig s = Cache.digest_key ~parts:[ s ]

let test_store_atomic_roundtrip () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  let k = kdig "one" and doc = Minijson.obj [ ("v", Minijson.int 1) ] in
  Store.add st k doc;
  Alcotest.(check int) "one entry" 1 (Store.length st);
  (match Store.find st k with
  | Some got ->
      Alcotest.(check string)
        "bytes survive" (Minijson.encode doc) (Minijson.encode got)
  | None -> Alcotest.fail "entry vanished");
  (* replacing is atomic and keeps the count *)
  let doc2 = Minijson.obj [ ("v", Minijson.int 2) ] in
  Store.add st k doc2;
  Alcotest.(check int) "still one entry" 1 (Store.length st);
  (* litter from a writer that died between create and rename is
     cleaned up by the next open; the committed entry is untouched *)
  let tmp = Filename.concat dir ".tmp-deadwriter" in
  let oc = open_out tmp in
  output_string oc "half an entry";
  close_out oc;
  let st2 = Store.open_ dir in
  Alcotest.(check bool) "temp litter removed" false (Sys.file_exists tmp);
  Alcotest.(check int) "index rebuilt from disk" 1 (Store.length st2);
  (match Store.find st2 k with
  | Some got ->
      Alcotest.(check string)
        "replacement visible after reopen" (Minijson.encode doc2)
        (Minijson.encode got)
  | None -> Alcotest.fail "entry lost across reopen");
  Alcotest.(check int)
    "verified disk read counted" 1
    (Store.stats st2).Store.warm_hits;
  Store.remove st2 k;
  Alcotest.(check int) "removed from the index" 0 (Store.length st2);
  Alcotest.(check bool) "removed on disk" true (Store.find st2 k = None)

let test_store_corruption_quarantined () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  let keys = List.map kdig [ "a"; "b"; "c" ] in
  List.iteri (fun i k -> Store.add st k (Minijson.int i)) keys;
  let bad = List.nth keys 1 in
  Alcotest.(check bool)
    "corruption helper found the file" true
    (Store.corrupt_for_test st bad);
  (* a bit-flipped entry is detected, quarantined, reported absent *)
  Alcotest.(check bool) "never served" true (Store.find st bad = None);
  Alcotest.(check int) "quarantined" 1 (Store.stats st).Store.quarantined;
  Alcotest.(check int) "index shrank" 2 (Store.length st);
  (* the second lookup is a plain miss, not a second quarantine *)
  Alcotest.(check bool) "still absent" true (Store.find st bad = None);
  Alcotest.(check int)
    "no double quarantine" 1 (Store.stats st).Store.quarantined;
  Alcotest.(check bool)
    "quarantine keeps the evidence" true
    (Array.length (Sys.readdir (Filename.concat dir "quarantine")) >= 1);
  (* a torn (truncated) entry is caught by the startup scrub *)
  let victim = Filename.concat dir (List.nth keys 2) in
  Unix.truncate victim ((Unix.stat victim).Unix.st_size - 1);
  let st2 = Store.open_ dir in
  let intact, quarantined = Store.scrub st2 in
  Alcotest.(check int) "intact after scrub" 1 intact;
  Alcotest.(check int) "torn entry scrubbed" 1 quarantined;
  Alcotest.(check bool)
    "good entry survives the scrub" true
    (Store.find st2 (List.hd keys) <> None)

let test_cache_warm_hits () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  let c = Cache.create ~capacity:2 ~store:st () in
  let k i = kdig (string_of_int i) in
  Cache.add c (k 1) (Minijson.int 1);
  Cache.add c (k 2) (Minijson.int 2);
  Cache.add c (k 3) (Minijson.int 3);
  (* k1 was evicted from memory but every add wrote through to disk *)
  Alcotest.(check int) "memory bounded" 2 (Cache.length c);
  Alcotest.(check int) "write-through" 3 (Store.length st);
  (match Cache.find c (k 1) with
  | Some v ->
      Alcotest.(check (option int))
        "eviction survivor served from disk" (Some 1) (Minijson.to_int v)
  | None -> Alcotest.fail "evicted entry lost despite the store");
  Alcotest.(check int) "warm hit counted" 1 (Cache.stats c).Cache.warm_hits;
  (* clear empties memory only; the store still answers *)
  Cache.clear c;
  Alcotest.(check int) "memory empty" 0 (Cache.length c);
  Alcotest.(check bool)
    "store survives clear" true
    (Cache.find c (k 2) <> None);
  Alcotest.(check int) "second warm hit" 2 (Cache.stats c).Cache.warm_hits

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let sample_source =
  {|
void main() {
  int n = 8;
  int *a = malloc(8);
  for (int i = 0; i < n; i = i + 1) { a[i] = in(i) * 2; }
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
  out(s);
}
|}

let sample_job ?(id = "t1") ?(deadline_ms = None) ?(verify = false)
    ?(trace_id = None) () =
  {
    Protocol.id;
    source = sample_source;
    input = [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    settings = Settings.default Partition.Methods.Gdp;
    deadline_ms;
    verify;
    trace_id;
  }

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Submit (sample_job ~deadline_ms:(Some 5000) ~verify:true ());
      Protocol.Submit (sample_job ~trace_id:(Some "t-client-1") ());
      Protocol.Cancel { id = "t1" };
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Health;
      Protocol.Trace { trace_id = "t-abc" };
      Protocol.Metrics Protocol.Json;
      Protocol.Metrics Protocol.Prometheus;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "request round-trip" true (req = req')
      | Error m -> Alcotest.failf "rejected own encoding: %s" m)
    reqs;
  let resps =
    [
      Protocol.Result
        { id = "t1"; cached = true; result = Minijson.int 5; trace = None };
      Protocol.Result
        {
          id = "t3";
          cached = false;
          result = Minijson.int 6;
          trace = Some (Minijson.obj [ ("trace_id", Minijson.str "t-abc") ]);
        };
      Protocol.Failed
        { id = "t1"; reason = "nope"; retry_after_ms = None; trace = None };
      Protocol.Failed
        {
          id = "t2";
          reason = "server overloaded";
          retry_after_ms = Some 120;
          trace = None;
        };
      Protocol.Cancelled { id = "t1" };
      Protocol.Pong;
      Protocol.Stats_reply (Minijson.obj [ ("served", Minijson.int 3) ]);
      Protocol.Health_reply (Minijson.obj [ ("status", Minijson.str "ok") ]);
      Protocol.Trace_reply (Minijson.obj [ ("trace_id", Minijson.str "t-1") ]);
      Protocol.Metrics_reply (Minijson.obj [ ("window_s", Minijson.float 60.) ]);
      Protocol.Metrics_text_reply "# TYPE gdpcd_served_total counter\n";
      Protocol.Shutting_down;
      Protocol.Error_reply "bad frame";
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_json (Protocol.response_to_json resp) with
      | Ok resp' -> Alcotest.(check bool) "response round-trip" true (resp = resp')
      | Error m -> Alcotest.failf "rejected own encoding: %s" m)
    resps

let test_protocol_rejections () =
  (match Protocol.request_of_json (Minijson.obj [ ("op", Minijson.str "ping") ]) with
  | Ok _ -> Alcotest.fail "accepted a schema-less request"
  | Error m ->
      Alcotest.(check bool) "names schema" true (contains m "schema"));
  (match
     Protocol.request_of_json
       (Minijson.obj
          [
            ("schema", Minijson.str Protocol.schema);
            ("op", Minijson.str "frobnicate");
          ])
   with
  | Ok _ -> Alcotest.fail "accepted an unknown op"
  | Error m -> Alcotest.(check bool) "names op" true (contains m "frobnicate"));
  (* an unknown settings field inside a submit is rejected by name *)
  let doc = Protocol.request_to_json (Protocol.Submit (sample_job ())) in
  let doc =
    match doc with
    | Minijson.Obj fields ->
        Minijson.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "settings", Minijson.Obj fs ->
                   (k, Minijson.Obj (fs @ [ ("colour", Minijson.int 1) ]))
               | _ -> (k, v))
             fields)
    | d -> d
  in
  match Protocol.request_of_json doc with
  | Ok _ -> Alcotest.fail "accepted a typo'd settings field"
  | Error m -> Alcotest.(check bool) "names the field" true (contains m "colour")

let test_protocol_cache_key () =
  let j = sample_job () in
  (* id and deadline do not participate in the content address *)
  Alcotest.(check string)
    "id irrelevant" (Protocol.cache_key j)
    (Protocol.cache_key { j with Protocol.id = "other" });
  Alcotest.(check string)
    "deadline irrelevant" (Protocol.cache_key j)
    (Protocol.cache_key { j with Protocol.deadline_ms = Some 9 });
  (* source, input and settings all do *)
  Alcotest.(check bool)
    "source matters" false
    (Protocol.cache_key j
    = Protocol.cache_key { j with Protocol.source = j.Protocol.source ^ " " });
  Alcotest.(check bool)
    "input matters" false
    (Protocol.cache_key j
    = Protocol.cache_key { j with Protocol.input = [ 9 ] });
  Alcotest.(check bool)
    "settings matter" false
    (Protocol.cache_key j
    = Protocol.cache_key
        {
          j with
          Protocol.settings =
            {
              j.Protocol.settings with
              Settings.machine =
                Machine_spec.of_legacy ~clusters:2 ~move_latency:10;
            };
        })

let test_protocol_evaluate_deterministic () =
  match (Protocol.evaluate_job (sample_job ()), Protocol.evaluate_job (sample_job ())) with
  | Ok a, Ok b ->
      Alcotest.(check string)
        "same bytes" (Minijson.encode a) (Minijson.encode b);
      Alcotest.(check (option string))
        "gdp artifact" (Some "gdp-artifact/1")
        (Option.bind (Minijson.member "schema" a) Minijson.to_string)
  | Error m, _ | _, Error m -> Alcotest.failf "evaluate_job failed: %s" m

(* ------------------------------------------------------------------ *)
(* End-to-end daemon                                                   *)

let test_server_end_to_end () =
  Loadgen.with_local_server ~jobs:2 (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (* ping *)
          (match Client.rpc cl Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | Ok _ -> Alcotest.fail "expected Pong"
          | Error m -> Alcotest.failf "ping failed: %s" m);
          (* first submission computes, the identical resubmit hits *)
          let first =
            match Client.submit cl (sample_job ~id:"e2e-1" ()) with
            | Ok (Protocol.Result { cached; result; _ }) ->
                Alcotest.(check bool) "first is a miss" false cached;
                result
            | Ok (Protocol.Failed { reason; _ }) ->
                Alcotest.failf "job failed: %s" reason
            | Ok _ -> Alcotest.fail "unexpected response"
            | Error m -> Alcotest.failf "submit failed: %s" m
          in
          let second =
            match Client.submit cl (sample_job ~id:"e2e-2" ()) with
            | Ok (Protocol.Result { cached; result; _ }) ->
                Alcotest.(check bool) "resubmit is a hit" true cached;
                result
            | Ok _ -> Alcotest.fail "unexpected response"
            | Error m -> Alcotest.failf "resubmit failed: %s" m
          in
          Alcotest.(check string)
            "hit returns identical bytes" (Minijson.encode first)
            (Minijson.encode second);
          (* ... and both match the inline evaluation byte for byte *)
          (match Protocol.evaluate_job (sample_job ()) with
          | Ok inline_result ->
              Alcotest.(check string)
                "served = inline" (Minijson.encode inline_result)
                (Minijson.encode first)
          | Error m -> Alcotest.failf "inline evaluation failed: %s" m);
          (* an already-expired deadline fails deterministically *)
          (match
             Client.submit cl (sample_job ~id:"e2e-3" ~deadline_ms:(Some 0) ())
           with
          | Ok (Protocol.Failed { reason; _ }) ->
              Alcotest.(check bool)
                "deadline reason" true
                (contains reason "deadline")
          | Ok _ -> Alcotest.fail "expected a deadline failure"
          | Error m -> Alcotest.failf "deadline submit failed: %s" m);
          (* a broken program fails cleanly, not fatally *)
          (match
             Client.submit cl
               { (sample_job ~id:"e2e-4" ()) with Protocol.source = "int x = ;" }
           with
          | Ok (Protocol.Failed _) -> ()
          | Ok _ -> Alcotest.fail "expected a compile failure"
          | Error m -> Alcotest.failf "bad-source submit failed: %s" m);
          (* cancelling an unknown job is a per-job failure *)
          (match Client.rpc cl (Protocol.Cancel { id = "ghost" }) with
          | Ok (Protocol.Failed { reason; _ }) ->
              Alcotest.(check bool) "unknown id" true (contains reason "unknown")
          | Ok _ -> Alcotest.fail "expected Failed for an unknown cancel"
          | Error m -> Alcotest.failf "cancel failed: %s" m);
          (* stats reflect the traffic above *)
          match Client.rpc cl Protocol.Stats with
          | Ok (Protocol.Stats_reply stats) ->
              let geti k = Option.bind (Minijson.member k stats) Minijson.to_int in
              Alcotest.(check bool)
                "served at least 2"
                true
                (match geti "served" with Some n -> n >= 2 | None -> false);
              let cache_hits =
                Option.bind (Minijson.member "cache" stats) (fun c ->
                    Option.bind (Minijson.member "hits" c) Minijson.to_int)
              in
              Alcotest.(check bool)
                "at least one cache hit" true
                (match cache_hits with Some n -> n >= 1 | None -> false)
          | Ok _ -> Alcotest.fail "expected Stats_reply"
          | Error m -> Alcotest.failf "stats failed: %s" m))

let test_server_rejects_garbage () =
  Loadgen.with_local_server ~jobs:1 (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (* valid frame, wrong schema: per-request error, connection lives *)
          Frame.write (Client.fd cl)
            (Minijson.obj [ ("schema", Minijson.str "nope/1") ]);
          (match Client.recv cl with
          | Ok (Protocol.Error_reply m) ->
              Alcotest.(check bool) "names schema" true (contains m "schema")
          | Ok _ -> Alcotest.fail "expected Error_reply"
          | Error m -> Alcotest.failf "recv failed: %s" m);
          (* the connection survived: ping still answers *)
          match Client.rpc cl Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | Ok _ -> Alcotest.fail "expected Pong after protocol error"
          | Error m -> Alcotest.failf "ping after error failed: %s" m))

let test_loadgen_closed_loop () =
  Loadgen.with_local_server ~jobs:2 (fun endpoint ->
      let summary =
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.endpoint;
            connections = 2;
            requests = 8;
            duplicate_ratio = 1.0;
            seed = 7;
          }
      in
      Alcotest.(check int) "all issued" 8 summary.Loadgen.requests;
      Alcotest.(check int) "all succeeded" 8 summary.Loadgen.succeeded;
      Alcotest.(check int) "none failed" 0 summary.Loadgen.failed;
      (* ratio 1.0 draws all 8 from a 4-program set: at least half must
         land in the cache (or coalesce onto an in-flight twin) *)
      Alcotest.(check bool)
        "cache hits happen" true
        (summary.Loadgen.cache_hits >= 4);
      Alcotest.(check bool)
        "throughput positive" true
        (summary.Loadgen.throughput_cps > 0.);
      (* the summary is gate-compatible with itself *)
      let json = Loadgen.summary_to_json summary in
      match Gdp_report.Regress.service_of_json json with
      | Error m -> Alcotest.failf "summary not gate-readable: %s" m
      | Ok b ->
          Alcotest.(check (list string))
            "self-check passes" []
            (List.map
               (fun i -> Fmt.str "%a" Gdp_report.Regress.pp_issue i)
               (Gdp_report.Regress.check_service ~tolerance:10. ~baseline:b b));
          (* a collapsed current run trips every gate *)
          let worse =
            {
              b with
              Gdp_report.Regress.sv_throughput_cps = b.Gdp_report.Regress.sv_throughput_cps /. 10.;
              sv_p99_us = (b.Gdp_report.Regress.sv_p99_us *. 10.) +. 10000.;
              sv_hit_rate = 0.;
            }
          in
          Alcotest.(check bool)
            "regressions detected" true
            (List.length
               (Gdp_report.Regress.check_service ~tolerance:10. ~baseline:b worse)
            >= 2))

(* ------------------------------------------------------------------ *)
(* Durability, overload and chaos, end to end                          *)

let unique_source tag =
  Printf.sprintf
    {|
void main() {
  int n = 8;
  int *a = malloc(8);
  for (int i = 0; i < n; i = i + 1) { a[i] = in(i) * %d; }
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
  out(s);
}
|}
    tag

(* big enough that a compile cannot finish inside a 1 ms deadline *)
let heavy_source =
  {|
void main() {
  int n = 48;
  int *a = malloc(48);
  int *b = malloc(48);
  for (int i = 0; i < n; i = i + 1) { a[i] = in(i) * 3; }
  for (int i = 0; i < n; i = i + 1) { b[i] = a[i] + in(i); }
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + b[i]; }
  out(s);
}
|}

let heavy_input = List.init 48 (fun i -> i + 1)

let raw_submit cl job =
  Frame.write (Client.fd cl) (Protocol.request_to_json (Protocol.Submit job))

let submit_expect_result ?(cached = fun _ -> true) cl job =
  match Client.submit cl job with
  | Ok (Protocol.Result { cached = c; result; _ }) ->
      if not (cached c) then
        Alcotest.failf "job %s: unexpected cached=%b" job.Protocol.id c;
      Minijson.encode result
  | Ok (Protocol.Failed { reason; _ }) ->
      Alcotest.failf "job %s failed: %s" job.Protocol.id reason
  | Ok _ -> Alcotest.failf "job %s: unexpected response" job.Protocol.id
  | Error m -> Alcotest.failf "job %s: submit failed: %s" job.Protocol.id m

let stats_int cl path =
  match Client.rpc cl Protocol.Stats with
  | Ok (Protocol.Stats_reply stats) ->
      List.fold_left
        (fun acc k -> Option.bind acc (Minijson.member k))
        (Some stats) path
      |> Fun.flip Option.bind Minijson.to_int
  | Ok _ -> Alcotest.fail "expected Stats_reply"
  | Error m -> Alcotest.failf "stats failed: %s" m

let method_field doc =
  match Option.bind (Minijson.member "method" doc) Minijson.to_string with
  | Some m -> m
  | None -> Alcotest.fail "artifact has no method field"

let inline_method m =
  let j = { (sample_job ()) with Protocol.settings = Settings.default m } in
  match Protocol.evaluate_job j with
  | Ok a -> method_field a
  | Error msg ->
      Alcotest.failf "inline %s run failed: %s"
        (Partition.Methods.to_string m)
        msg

(* The headline durability guarantee: kill -9 the daemon, restart it on
   the same store directory, and the artifact is served from disk —
   byte-identical, without recompiling. *)
let test_server_store_survives_kill () =
  let dir = temp_dir () in
  let job = sample_job ~id:"dur-1" () in
  let inline_bytes =
    match Protocol.evaluate_job job with
    | Ok a -> Minijson.encode a
    | Error m -> Alcotest.failf "inline evaluation failed: %s" m
  in
  let h = Loadgen.spawn_server ~jobs:1 ~store_dir:dir () in
  let first =
    Fun.protect
      ~finally:(fun () -> Loadgen.stop_server ~signal:Sys.sigkill h)
      (fun () ->
        let cl = Client.connect ~attempts:20 h.Loadgen.sh_socket in
        Fun.protect
          ~finally:(fun () -> Client.close cl)
          (fun () -> submit_expect_result ~cached:not cl job))
  in
  Alcotest.(check string) "served = inline" inline_bytes first;
  let h2 = Loadgen.spawn_server ~jobs:1 ~store_dir:dir () in
  Fun.protect
    ~finally:(fun () -> Loadgen.stop_server h2)
    (fun () ->
      let cl = Client.connect ~attempts:20 h2.Loadgen.sh_socket in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let again =
            submit_expect_result cl { job with Protocol.id = "dur-2" }
          in
          Alcotest.(check string) "identical bytes across kill -9" first again;
          Alcotest.(check bool)
            "warm hit counted" true
            (match stats_int cl [ "store"; "warm_hits" ] with
            | Some n -> n >= 1
            | None -> false)))

(* A corrupted store entry must be quarantined by the startup scrub and
   recompiled — never served. *)
let test_server_corrupt_entry_recompiled () =
  let dir = temp_dir () in
  let job = sample_job ~id:"cor-1" () in
  let h = Loadgen.spawn_server ~jobs:1 ~store_dir:dir () in
  let first =
    Fun.protect
      ~finally:(fun () -> Loadgen.stop_server h)
      (fun () ->
        let cl = Client.connect ~attempts:20 h.Loadgen.sh_socket in
        Fun.protect
          ~finally:(fun () -> Client.close cl)
          (fun () -> submit_expect_result ~cached:not cl job))
  in
  (* flip one byte of the artifact the daemon just persisted *)
  let st = Store.open_ dir in
  Alcotest.(check bool)
    "stored entry found and corrupted" true
    (Store.corrupt_for_test st (Protocol.cache_key job));
  let h2 = Loadgen.spawn_server ~jobs:1 ~store_dir:dir () in
  Fun.protect
    ~finally:(fun () -> Loadgen.stop_server h2)
    (fun () ->
      let cl = Client.connect ~attempts:20 h2.Loadgen.sh_socket in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (* the scrub already quarantined it: this is a recompile *)
          let again =
            submit_expect_result ~cached:not cl
              { job with Protocol.id = "cor-2" }
          in
          Alcotest.(check string) "recompiled to identical bytes" first again;
          Alcotest.(check (option int))
            "startup scrub quarantined the entry" (Some 1)
            (stats_int cl [ "store"; "scrub_quarantined" ]);
          Alcotest.(check bool)
            "evidence kept" true
            (Array.length (Sys.readdir (Filename.concat dir "quarantine"))
            >= 1)))

(* Deadline edges: expiry while the job is running fails the waiter and
   drops the late result; deadline_ms = 0 fails at admission. *)
let test_server_deadline_edges () =
  Loadgen.with_local_server ~jobs:1 (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let job =
            {
              (sample_job ~id:"dl-run" ~deadline_ms:(Some 1) ()) with
              Protocol.source = heavy_source;
              Protocol.input = heavy_input;
            }
          in
          (match Client.submit cl job with
          | Ok (Protocol.Failed { id; reason; _ }) ->
              Alcotest.(check string) "job id" "dl-run" id;
              Alcotest.(check bool)
                "deadline reason" true
                (contains reason "deadline")
          | Ok _ -> Alcotest.fail "expected a deadline failure"
          | Error m -> Alcotest.failf "submit failed: %s" m);
          (* the compile outlives the deadline; its result must be
             dropped, not delivered late *)
          (match Client.rpc cl Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | Ok _ -> Alcotest.fail "expected Pong"
          | Error m -> Alcotest.failf "ping failed: %s" m);
          (match Unix.select [ Client.fd cl ] [] [] 0.5 with
          | [], _, _ -> ()
          | _ -> Alcotest.fail "server pushed a frame after the failure");
          (* admission-time expiry: rejected before any compile *)
          match
            Client.submit cl (sample_job ~id:"dl-0" ~deadline_ms:(Some 0) ())
          with
          | Ok (Protocol.Failed { reason; retry_after_ms; _ }) ->
              Alcotest.(check bool)
                "names the deadline" true
                (contains reason "deadline");
              Alcotest.(check bool)
                "no backpressure hint on a deadline" true
                (retry_after_ms = None)
          | Ok _ -> Alcotest.fail "expected an admission-time failure"
          | Error m -> Alcotest.failf "submit failed: %s" m))

(* Brown-out: with the threshold at 0 every admission is at least level
   1 (verification shed); a burst that fills 2/3 of max_pending pushes
   the last admission to level 3, which steps GDP down the ladder. *)
let test_server_brownout_degrades () =
  Loadgen.with_local_server ~jobs:1 ~max_pending:3 ~brownout:0.0
    (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let mk tag id verify =
            {
              (sample_job ~id ~verify ()) with
              Protocol.source = unique_source tag;
            }
          in
          raw_submit cl (mk 11 "bo-a" true);
          raw_submit cl (mk 12 "bo-b" false);
          raw_submit cl (mk 13 "bo-c" false);
          let rec read_results acc n =
            if n = 0 then acc
            else
              match Client.recv cl with
              | Ok (Protocol.Result { id; result; _ }) ->
                  read_results ((id, result) :: acc) (n - 1)
              | Ok (Protocol.Failed { id; reason; _ }) ->
                  Alcotest.failf "job %s failed: %s" id reason
              | Ok _ -> Alcotest.fail "unexpected response"
              | Error m -> Alcotest.failf "recv failed: %s" m
          in
          let results = read_results [] 3 in
          let last =
            match List.assoc_opt "bo-c" results with
            | Some a -> method_field a
            | None -> Alcotest.fail "no response for bo-c"
          in
          let gdp = inline_method Partition.Methods.Gdp in
          let profile_max = inline_method Partition.Methods.Profile_max in
          let naive = inline_method Partition.Methods.Naive in
          Alcotest.(check bool)
            (Printf.sprintf "stepped down the ladder (got %s)" last)
            true
            (last <> gdp && (last = naive || last = profile_max));
          Alcotest.(check bool)
            "verification was shed" true
            (match stats_int cl [ "admission"; "shed_verify" ] with
            | Some n -> n >= 1
            | None -> false);
          Alcotest.(check bool)
            "degradations counted" true
            (match stats_int cl [ "admission"; "degraded" ] with
            | Some n -> n >= 1
            | None -> false)))

(* Hard admission: beyond max_pending the server rejects with a bounded
   retry_after_ms hint, and the client-side retry loop turns that into
   an eventual success. *)
let test_server_overload_reject_and_retry () =
  Loadgen.with_local_server ~jobs:1 ~max_pending:1 (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      let cl2 = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () ->
          Client.close cl;
          Client.close cl2)
        (fun () ->
          let a =
            { (sample_job ~id:"ov-a" ()) with Protocol.source = unique_source 21 }
          in
          let b =
            { (sample_job ~id:"ov-b" ()) with Protocol.source = unique_source 22 }
          in
          raw_submit cl a;
          raw_submit cl b;
          (* b hits the cap while a holds the only pending slot: the
             rejection is synchronous, so it arrives before a's result *)
          (match Client.recv cl with
          | Ok (Protocol.Failed { id; reason; retry_after_ms; _ }) ->
              Alcotest.(check string) "rejected job" "ov-b" id;
              Alcotest.(check bool)
                "names overload" true
                (contains reason "overloaded");
              (match retry_after_ms with
              | Some ms ->
                  Alcotest.(check bool)
                    "hint bounded to [50, 2000]" true
                    (ms >= 50 && ms <= 2000)
              | None -> Alcotest.fail "expected a retry_after_ms hint")
          | Ok _ -> Alcotest.fail "expected the overload rejection first"
          | Error m -> Alcotest.failf "recv failed: %s" m);
          (match Client.recv cl with
          | Ok (Protocol.Result { id; _ }) ->
              Alcotest.(check string) "first job still served" "ov-a" id
          | Ok _ -> Alcotest.fail "expected ov-a's result"
          | Error m -> Alcotest.failf "recv failed: %s" m);
          (* refill the slot, then let the retrying client sleep through
             the hint and win the slot when it frees up *)
          let c =
            { (sample_job ~id:"ov-c" ()) with Protocol.source = unique_source 23 }
          in
          raw_submit cl c;
          (match Client.rpc cl2 Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | _ -> Alcotest.fail "ping failed");
          (* cl's frame was written first; ping-pong on cl2 only proves
             cl2 is live — order c before d by sleeping a beat *)
          ignore (Unix.select [] [] [] 0.05);
          let d =
            { (sample_job ~id:"ov-d" ()) with Protocol.source = unique_source 24 }
          in
          (match Client.submit ~retries:10 cl2 d with
          | Ok (Protocol.Result { id; _ }) ->
              Alcotest.(check string) "retry eventually lands" "ov-d" id
          | Ok (Protocol.Failed { reason; _ }) ->
              Alcotest.failf "retries exhausted: %s" reason
          | Ok _ -> Alcotest.fail "unexpected response"
          | Error m -> Alcotest.failf "retrying submit failed: %s" m);
          (match Client.recv cl with
          | Ok (Protocol.Result { id; _ }) ->
              Alcotest.(check string) "c served too" "ov-c" id
          | Ok (Protocol.Failed { reason; _ }) ->
              Alcotest.failf "ov-c failed: %s" reason
          | Ok _ -> Alcotest.fail "unexpected response"
          | Error m -> Alcotest.failf "recv failed: %s" m);
          Alcotest.(check bool)
            "rejections counted" true
            (match stats_int cl2 [ "rejected" ] with
            | Some n -> n >= 1
            | None -> false)))

(* Server-side chaos: a worker SIGKILLed mid-compile is detected,
   respawned, and the job retried — every artifact still byte-identical
   to the inline pipeline. *)
let test_server_worker_kill_chaos () =
  Loadgen.with_local_server ~jobs:2 ~inject:("service.worker.kill@3", 7)
    (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          List.iter
            (fun tag ->
              let j =
                {
                  (sample_job ~id:(Printf.sprintf "kill-%d" tag) ()) with
                  Protocol.source = unique_source tag;
                }
              in
              let inline_bytes =
                match Protocol.evaluate_job j with
                | Ok a -> Minijson.encode a
                | Error m -> Alcotest.failf "inline run failed: %s" m
              in
              let served = submit_expect_result ~cached:not cl j in
              Alcotest.(check string)
                "byte-identical despite worker kills" inline_bytes served)
            [ 31; 32; 33; 34; 35; 36 ];
          Alcotest.(check bool)
            "a worker was killed" true
            (match stats_int cl [ "pool"; "crashes" ] with
            | Some n -> n >= 1
            | None -> false);
          Alcotest.(check bool)
            "and respawned" true
            (match stats_int cl [ "pool"; "respawns" ] with
            | Some n -> n >= 1
            | None -> false)))

(* Client-side chaos: torn frames, bit flips, slow-loris, mid-job
   disconnects — the daemon survives and never serves diverging
   artifact bytes. *)
let test_loadgen_chaos_consistency () =
  Loadgen.with_local_server ~jobs:2 (fun endpoint ->
      let summary =
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.endpoint;
            connections = 3;
            requests = 18;
            duplicate_ratio = 0.5;
            seed = 11;
            chaos =
              Some
                "service.frame.torn@5*,service.frame.corrupt@7*,service.client.slow-loris@9*,service.client.disconnect@6*";
            inject_seed = 23;
            max_attempts = 6;
          }
      in
      Alcotest.(check int) "all issued" 18 summary.Loadgen.requests;
      Alcotest.(check bool)
        "chaos actually injected" true
        (summary.Loadgen.injected >= 3);
      Alcotest.(check int)
        "zero artifact divergence under chaos" 0
        summary.Loadgen.artifact_mismatches;
      Alcotest.(check int)
        "every request accounted for" 18
        (summary.Loadgen.succeeded + summary.Loadgen.failed);
      Alcotest.(check bool)
        "chaos does not sink the stream" true
        (summary.Loadgen.succeeded >= 16))

(* ------------------------------------------------------------------ *)
(* Tracing and the metrics plane                                       *)

(* A v1 client knows nothing of [trace_id] or the admin verbs; its
   envelopes must still decode.  And a v2 client that leaves
   [trace_id] unset must put bytes on the wire that a strict v1
   server — which rejects unknown fields by name — would accept. *)
let test_protocol_version_negotiation () =
  let j = sample_job () in
  (* old client -> new server: the same submit under the v1 schema *)
  let v1 =
    match Protocol.request_to_json (Protocol.Submit j) with
    | Minijson.Obj fields ->
        Minijson.Obj
          (List.map
             (fun (k, v) ->
               if k = "schema" then (k, Minijson.str "gdp-service/1")
               else (k, v))
             fields)
    | d -> d
  in
  (match Protocol.request_of_json v1 with
  | Ok (Protocol.Submit j') ->
      Alcotest.(check bool) "v1 submit accepted" true (j' = j);
      Alcotest.(check bool) "no trace id" true (j'.Protocol.trace_id = None)
  | Ok _ -> Alcotest.fail "v1 submit decoded to the wrong request"
  | Error m -> Alcotest.failf "v1 submit rejected: %s" m);
  (* new client -> old strict server: an unset trace_id must not
     appear on the wire at all *)
  (match Protocol.request_to_json (Protocol.Submit j) with
  | Minijson.Obj fields ->
      Alcotest.(check bool)
        "trace_id absent when unset" true
        (not (List.mem_assoc "trace_id" fields))
  | _ -> Alcotest.fail "submit did not encode to an object");
  (* ... while a set trace_id survives the v2 round-trip *)
  let j2 = sample_job ~trace_id:(Some "t-negotiate") () in
  (match
     Protocol.request_of_json (Protocol.request_to_json (Protocol.Submit j2))
   with
  | Ok (Protocol.Submit j') ->
      Alcotest.(check (option string))
        "trace id round-trips" (Some "t-negotiate") j'.Protocol.trace_id
  | Ok _ -> Alcotest.fail "v2 submit decoded to the wrong request"
  | Error m -> Alcotest.failf "v2 submit rejected: %s" m);
  (* a future schema is still refused, naming what we do speak *)
  match
    Protocol.request_of_json
      (Minijson.obj
         [
           ("schema", Minijson.str "gdp-service/3"); ("op", Minijson.str "ping");
         ])
  with
  | Ok _ -> Alcotest.fail "accepted an unknown schema version"
  | Error m ->
      Alcotest.(check bool)
        "names the current version" true
        (contains m "gdp-service/2")

let gets k doc = Option.bind (Minijson.member k doc) Minijson.to_string
let getf k doc = Option.bind (Minijson.member k doc) Minijson.to_float

let test_server_trace_and_admin () =
  Loadgen.with_local_server ~jobs:1 (fun endpoint ->
      let cl = Client.connect ~attempts:20 endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let trace =
            match Client.submit cl (sample_job ~id:"tr-1" ()) with
            | Ok (Protocol.Result { trace = Some t; _ }) -> t
            | Ok (Protocol.Result { trace = None; _ }) ->
                Alcotest.fail "response carried no trace"
            | Ok (Protocol.Failed { reason; _ }) ->
                Alcotest.failf "job failed: %s" reason
            | Ok _ -> Alcotest.fail "unexpected response"
            | Error m -> Alcotest.failf "submit failed: %s" m
          in
          let client_us = (Unix.gettimeofday () -. t0) *. 1e6 in
          let trace_id =
            match gets "trace_id" trace with
            | Some id -> id
            | None -> Alcotest.fail "trace doc has no trace_id"
          in
          Alcotest.(check (option string))
            "trace schema" (Some "gdp-trace/1") (gets "schema" trace);
          Alcotest.(check (option string))
            "computed off-cache" (Some "compute") (gets "cache_tier" trace);
          (* the accounted segments sit inside the server total, and the
             server total inside the client-observed wire latency (1 ms
             slack covers clock granularity either side) *)
          let seg k = Option.value ~default:Float.nan (getf k trace) in
          let total = seg "total_us" in
          Alcotest.(check bool)
            "segments within total" true
            (seg "queue_us" +. seg "exec_us" <= total +. 1000.);
          Alcotest.(check bool)
            "total within client latency" true (total <= client_us +. 1000.);
          (* TRACE <id> resolves to the registered document *)
          (match Client.rpc cl (Protocol.Trace { trace_id }) with
          | Ok (Protocol.Trace_reply doc) ->
              Alcotest.(check string)
                "TRACE returns the registered doc" (Minijson.encode trace)
                (Minijson.encode doc)
          | Ok _ -> Alcotest.fail "expected Trace_reply"
          | Error m -> Alcotest.failf "trace rpc failed: %s" m);
          (* an unknown id is a clean per-request error *)
          (match Client.rpc cl (Protocol.Trace { trace_id = "t-nope" }) with
          | Ok (Protocol.Error_reply m) ->
              Alcotest.(check bool) "names the id" true (contains m "t-nope")
          | Ok _ -> Alcotest.fail "expected Error_reply for unknown trace"
          | Error m -> Alcotest.failf "unknown-trace rpc failed: %s" m);
          (* a client-supplied trace id is honoured end to end *)
          (match
             Client.submit cl
               (sample_job ~id:"tr-2" ~trace_id:(Some "t-mine") ())
           with
          | Ok (Protocol.Result { trace = Some t; _ }) ->
              Alcotest.(check (option string))
                "client trace id kept" (Some "t-mine") (gets "trace_id" t);
              Alcotest.(check (option string))
                "resubmit hit the cache" (Some "memory") (gets "cache_tier" t)
          | Ok _ -> Alcotest.fail "expected a traced Result"
          | Error m -> Alcotest.failf "traced submit failed: %s" m);
          (* HEALTH *)
          (match Client.rpc cl Protocol.Health with
          | Ok (Protocol.Health_reply h) ->
              Alcotest.(check (option string))
                "health schema" (Some "gdp-health/1") (gets "schema" h);
              Alcotest.(check (option string))
                "healthy" (Some "ok") (gets "status" h)
          | Ok _ -> Alcotest.fail "expected Health_reply"
          | Error m -> Alcotest.failf "health failed: %s" m);
          (* METRICS json: the submits above are visible in the window *)
          (match Client.rpc cl (Protocol.Metrics Protocol.Json) with
          | Ok (Protocol.Metrics_reply m) ->
              Alcotest.(check (option string))
                "metrics schema" (Some "gdp-metrics/1") (gets "schema" m);
              let count_of method_ =
                Option.bind (Minijson.member "latency_us" m) (fun l ->
                    Option.bind (Minijson.member method_ l) (fun h ->
                        Option.bind (Minijson.member "count" h) Minijson.to_int))
              in
              Alcotest.(check bool)
                "computed submit recorded" true
                (match count_of "submit" with Some n -> n >= 1 | None -> false);
              Alcotest.(check bool)
                "cache hit recorded" true
                (match count_of "submit_hit" with
                | Some n -> n >= 1
                | None -> false)
          | Ok _ -> Alcotest.fail "expected Metrics_reply"
          | Error m -> Alcotest.failf "metrics failed: %s" m);
          (* METRICS prometheus: well-formed text exposition *)
          match Client.rpc cl (Protocol.Metrics Protocol.Prometheus) with
          | Ok (Protocol.Metrics_text_reply text) ->
              Alcotest.(check bool)
                "has TYPE lines" true
                (contains text "# TYPE gdpcd_");
              Alcotest.(check bool)
                "serves the request counter" true
                (contains text "gdpcd_served_total");
              Alcotest.(check bool)
                "serves quantiles" true
                (contains text "quantile=\"0.99\"")
          | Ok _ -> Alcotest.fail "expected Metrics_text_reply"
          | Error m -> Alcotest.failf "prometheus failed: %s" m))

let test_server_events_log () =
  let events = Filename.temp_file "gdp-events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove events with Sys_error _ -> ())
    (fun () ->
      Loadgen.with_local_server ~jobs:1 ~events (fun endpoint ->
          let cl = Client.connect ~attempts:20 endpoint in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              (* one computed request, one cache hit *)
              (match Client.submit cl (sample_job ~id:"ev-1" ()) with
              | Ok (Protocol.Result _) -> ()
              | _ -> Alcotest.fail "first submit failed");
              (match Client.submit cl (sample_job ~id:"ev-2" ()) with
              | Ok (Protocol.Result { cached; _ }) ->
                  Alcotest.(check bool) "resubmit hit" true cached
              | _ -> Alcotest.fail "resubmit failed");
              (* emit_event flushes per line, so once our responses are
                 back the log is complete up to here *)
              let ic = open_in events in
              let lines = ref [] in
              (try
                 while true do
                   lines := input_line ic :: !lines
                 done
               with End_of_file -> close_in ic);
              let docs =
                List.rev_map
                  (fun line ->
                    match Minijson.parse line with
                    | Ok doc -> doc
                    | Error m ->
                        Alcotest.failf "unparseable event line %S: %s" line m)
                  !lines
              in
              Alcotest.(check bool)
                "events were logged" true
                (List.length docs >= 4);
              List.iter
                (fun doc ->
                  Alcotest.(check bool)
                    "every event is typed" true
                    (gets "event" doc <> None);
                  Alcotest.(check bool)
                    "every event is correlatable" true
                    (gets "trace_id" doc <> None))
                docs;
              let kinds = List.filter_map (gets "event") docs in
              List.iter
                (fun k ->
                  Alcotest.(check bool)
                    (Printf.sprintf "saw a %S event" k)
                    true (List.mem k kinds))
                [ "submit"; "dispatch"; "deliver"; "cache_hit" ])))

let suite =
  [
    Alcotest.test_case "minijson: control chars" `Quick test_minijson_control_chars;
    Alcotest.test_case "minijson: unicode escapes" `Quick
      test_minijson_unicode_escapes;
    Alcotest.test_case "minijson: deep nesting" `Quick test_minijson_deep_nesting;
    Alcotest.test_case "frame: round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: truncation" `Quick test_frame_truncation;
    Alcotest.test_case "frame: oversize rejection" `Quick test_frame_oversize;
    Alcotest.test_case "frame: incremental decoder" `Quick
      test_frame_decoder_incremental;
    Alcotest.test_case "frame: decoder errors sticky" `Quick
      test_frame_decoder_oversize_sticky;
    Alcotest.test_case "cache: LRU bound and recency" `Quick test_cache_lru;
    Alcotest.test_case "cache: misses counted" `Quick test_cache_misses_counted;
    Alcotest.test_case "cache: digest aliasing" `Quick
      test_cache_digest_no_aliasing;
    Alcotest.test_case "store: atomic round-trip" `Quick
      test_store_atomic_roundtrip;
    Alcotest.test_case "store: corruption quarantined" `Quick
      test_store_corruption_quarantined;
    Alcotest.test_case "cache: warm hits through the store" `Quick
      test_cache_warm_hits;
    Alcotest.test_case "protocol: round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol: rejections" `Quick test_protocol_rejections;
    Alcotest.test_case "protocol: cache key" `Quick test_protocol_cache_key;
    Alcotest.test_case "protocol: evaluate deterministic" `Quick
      test_protocol_evaluate_deterministic;
    Alcotest.test_case "server: end to end" `Slow test_server_end_to_end;
    Alcotest.test_case "server: garbage handling" `Slow
      test_server_rejects_garbage;
    Alcotest.test_case "loadgen: closed loop" `Slow test_loadgen_closed_loop;
    Alcotest.test_case "server: store survives kill -9" `Slow
      test_server_store_survives_kill;
    Alcotest.test_case "server: corrupt entry recompiled" `Slow
      test_server_corrupt_entry_recompiled;
    Alcotest.test_case "server: deadline edges" `Slow
      test_server_deadline_edges;
    Alcotest.test_case "server: brown-out degrades" `Slow
      test_server_brownout_degrades;
    Alcotest.test_case "server: overload reject and retry" `Slow
      test_server_overload_reject_and_retry;
    Alcotest.test_case "server: worker-kill chaos" `Slow
      test_server_worker_kill_chaos;
    Alcotest.test_case "loadgen: chaos consistency" `Slow
      test_loadgen_chaos_consistency;
    Alcotest.test_case "protocol: version negotiation" `Quick
      test_protocol_version_negotiation;
    Alcotest.test_case "server: trace and admin plane" `Slow
      test_server_trace_and_admin;
    Alcotest.test_case "server: events log" `Slow test_server_events_log;
  ]
