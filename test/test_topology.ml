(** Topology and machine-spec tests: the Bus spec path reproduces the
    seed constructors' cycle counts exactly, the simulator agrees with
    the static model (and the attribution identity holds) on random
    machines of every topology, [Machine_spec] JSON round-trips, and
    v2 settings documents migrate to the v3 [machine] field. *)

module M = Vliw_machine
module Spec = Machine_spec
module Attrib = Vliw_sched.Attrib
module Sim = Vliw_sched.Vliw_sim
module Perf = Vliw_sched.Perf
module Methods = Partition.Methods
module Pipeline = Gdp_core.Pipeline
module Settings = Gdp_core.Pipeline.Settings

let sum = Array.fold_left ( + ) 0

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let bench_of_seed seed : Benchsuite.Bench_intf.t =
  {
    name = Printf.sprintf "fuzz-%d" seed;
    description = "";
    source = Gen_minic.gen_program_with_seed seed;
    input = Gen_minic.input;
    exhaustive_ok = false;
  }

(* ------------------------------------------------------------------ *)
(* Random machine specs                                                *)

(** Factor pairs of [n] (rows, cols), for mesh shapes. *)
let factor_pairs n =
  List.concat_map
    (fun r -> if n mod r = 0 then [ (r, n / r) ] else [])
    (List.init n (fun i -> i + 1))

let gen_cluster st =
  {
    Spec.ints = 1 + Random.State.int st 3;
    floats = 1 + Random.State.int st 2;
    mems = 1 + Random.State.int st 2;
    branches = 1;
    memory_bytes = 1024 * (1 + Random.State.int st 64);
  }

(** A random valid spec: 1/2/4/8 clusters (the k-way partitioner wants
    a power of two) of random shapes, any topology compatible with the
    cluster count, latency 1-6, bandwidth 1-2. *)
let gen_spec st =
  let n = 1 lsl Random.State.int st 4 in
  let clusters = List.init n (fun _ -> gen_cluster st) in
  let meshes =
    List.map (fun (rows, cols) -> M.Mesh { rows; cols }) (factor_pairs n)
  in
  let topologies = [ M.Bus; M.Ring; M.Crossbar ] @ meshes in
  let topology = List.nth topologies (Random.State.int st (List.length topologies)) in
  {
    Spec.name =
      Fmt.str "random-%dc-%s" n (M.topology_name topology);
    clusters;
    topology;
    link_latency = 1 + Random.State.int st 6;
    link_bandwidth = 1 + Random.State.int st 2;
  }

(* ------------------------------------------------------------------ *)
(* Bus spec reproduces the seed constructors exactly                   *)

(* [Machine_spec.of_legacy] resolves to the very machine the seed's
   [paper_machine]/[scaled_machine] build (names included), and the
   whole pipeline consequently produces identical cycle counts through
   either path — the invariant that keeps v2 settings and the committed
   figure baselines byte-stable. *)
let check_bus_reproduces_seed seed =
  let prepared = Pipeline.prepare (bench_of_seed seed) in
  List.iter
    (fun (clusters, move_latency) ->
      let seed_machine =
        if clusters = 2 then M.paper_machine ~move_latency ()
        else M.scaled_machine ~clusters ~move_latency ()
      in
      let spec_machine =
        Spec.resolve (Spec.of_legacy ~clusters ~move_latency)
      in
      if spec_machine <> seed_machine then
        QCheck.Test.fail_reportf "spec machine differs for %d clusters lat %d"
          clusters move_latency;
      let eval machine =
        let ctx = Pipeline.context ~machine prepared in
        List.map
          (fun m ->
            let e = Pipeline.evaluate ctx m in
            ( Methods.name m,
              e.Pipeline.report.Perf.total_cycles,
              e.Pipeline.report.Perf.dynamic_moves ))
          Methods.all
      in
      if eval spec_machine <> eval seed_machine then
        QCheck.Test.fail_reportf
          "cycle counts differ between spec and seed machines (%d clusters, \
           latency %d)"
          clusters move_latency)
    [ (2, 1); (2, 5); (4, 5) ];
  true

let prop_bus_reproduces_seed =
  Helpers.qcheck ~count:8
    "bus topology via Machine_spec reproduces seed cycle counts"
    check_bus_reproduces_seed Gen_minic.arbitrary_program

(* ------------------------------------------------------------------ *)
(* Simulator vs static model on random machines                        *)

(* For a random program on a random machine (any topology): the
   clustered program still computes the reference outputs, the
   contention-aware simulator's cycle count equals the static cycle
   model, and the attribution identity [cycles = sum of categories]
   holds for the dynamic account. *)
let check_random_machine seed =
  let prepared = Pipeline.prepare (bench_of_seed seed) in
  let st = Random.State.make [| (seed * 131) + 17 |] in
  let reference = prepared.Pipeline.reference in
  for _trial = 0 to 1 do
    let spec = gen_spec st in
    let machine = Spec.resolve spec in
    let ctx = Pipeline.context ~machine prepared in
    let objects_of = Methods.objects_of ctx in
    List.iter
      (fun m ->
        let what =
          Printf.sprintf "seed %d, %s, %s" seed (Methods.name m)
            machine.M.name
        in
        let e = Pipeline.evaluate ctx m in
        let clustered = e.Pipeline.outcome.Methods.clustered in
        let sim =
          Sim.run ~account:true clustered ~machine ~objects_of
            ~input:Gen_minic.input ()
        in
        if
          not
            (Helpers.equal_outputs sim.Sim.outputs
               reference.Vliw_interp.Interp.outputs)
        then QCheck.Test.fail_reportf "%s: outputs differ" what;
        if sim.Sim.cycles <> e.Pipeline.report.Perf.total_cycles then
          QCheck.Test.fail_reportf "%s: sim %d <> static model %d" what
            sim.Sim.cycles e.Pipeline.report.Perf.total_cycles;
        let dyn =
          match sim.Sim.account with
          | Some t -> t
          | None -> QCheck.Test.fail_reportf "%s: no account" what
        in
        if sum dyn.Attrib.t_categories <> sim.Sim.cycles then
          QCheck.Test.fail_reportf "%s: categories sum %d <> cycles %d" what
            (sum dyn.Attrib.t_categories)
            sim.Sim.cycles;
        match Attrib.check_identity dyn with
        | None -> ()
        | Some msg -> QCheck.Test.fail_reportf "%s: %s" what msg)
      Methods.all
  done;
  true

let prop_random_machine =
  Helpers.qcheck ~count:8
    "sim agrees with the static model on random machines"
    check_random_machine Gen_minic.arbitrary_program

(* ------------------------------------------------------------------ *)
(* Machine_spec JSON round-trip                                        *)

let check_spec_roundtrip seed =
  let st = Random.State.make [| (seed * 53) + 5 |] in
  let spec = gen_spec st in
  match Spec.of_json (Spec.to_json spec) with
  | Ok spec' ->
      if spec' <> spec then
        QCheck.Test.fail_reportf "round-trip changed the spec: %a -> %a"
          Spec.pp spec Spec.pp spec';
      true
  | Error m -> QCheck.Test.fail_reportf "round-trip rejected: %s" m

let prop_spec_roundtrip =
  Helpers.qcheck ~count:100 "Machine_spec JSON round-trip"
    check_spec_roundtrip QCheck.small_nat

(* ------------------------------------------------------------------ *)
(* Presets                                                             *)

let test_presets () =
  let expect = [ ("paper", 2); ("kway4", 4); ("ring8", 8); ("mesh16", 16); ("hetero4", 4) ] in
  List.iter
    (fun name ->
      match Spec.preset name with
      | Error m -> Alcotest.failf "preset %s rejected: %s" name m
      | Ok spec ->
          let machine = Spec.resolve spec in
          Alcotest.(check int)
            (name ^ ": cluster count")
            (List.assoc name expect) (M.num_clusters machine))
    Spec.preset_names;
  (match Spec.preset "paper" with
  | Ok spec ->
      Alcotest.(check bool) "paper preset is the paper machine" true
        (Spec.resolve spec = M.paper_machine ())
  | Error m -> Alcotest.fail m);
  match Spec.preset "nope" with
  | Ok _ -> Alcotest.fail "unknown preset accepted"
  | Error m ->
      Alcotest.(check bool) "error names the preset" true
        (contains ~affix:"nope" m)

let test_spec_errors () =
  let reject what doc =
    match Spec.of_json doc with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  let cluster_json = Spec.to_json (Spec.of_legacy ~clusters:2 ~move_latency:5) in
  (match cluster_json with
  | Minijson.Obj fields ->
      reject "unknown field" (Minijson.Obj (("wat", Minijson.int 1) :: fields));
      reject "bad topology"
        (Minijson.Obj
           (List.map
              (fun (k, v) ->
                if k = "topology" then (k, Minijson.str "torus") else (k, v))
              fields));
      reject "mesh does not tile"
        (Minijson.Obj
           (List.map
              (fun (k, v) ->
                if k = "topology" then (k, Minijson.str "mesh3x3") else (k, v))
              fields))
  | _ -> Alcotest.fail "spec did not encode as an object");
  reject "not an object" (Minijson.str "paper");
  (match Spec.topology_of_name "mesh4x4" with
  | Ok (M.Mesh { rows = 4; cols = 4 }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "mesh4x4 did not parse");
  match Spec.topology_of_name "mesh4" with
  | Ok _ -> Alcotest.fail "mesh4 accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Settings: v2 -> v3 migration                                        *)

(* apply [changes] to a JSON object: [Some v] replaces (or appends) the
   field, [None] deletes it *)
let replace_fields doc changes =
  match doc with
  | Minijson.Obj fields ->
      let replaced =
        List.filter_map
          (fun (k, v) ->
            match List.assoc_opt k changes with
            | Some None -> None
            | Some (Some v') -> Some (k, v')
            | None -> Some (k, v))
          fields
      in
      let added =
        List.filter_map
          (fun (k, change) ->
            match change with
            | Some v when not (List.mem_assoc k fields) -> Some (k, v)
            | _ -> None)
          changes
      in
      Minijson.Obj (replaced @ added)
  | _ -> Alcotest.fail "settings did not encode as an object"

let test_settings_migration () =
  (* a legacy-shaped machine emits the exact v2 wire fields... *)
  let legacy = Settings.default Partition.Methods.Gdp in
  let doc = Settings.to_json legacy in
  Alcotest.(check (option int)) "legacy emits version 2" (Some 2)
    (Option.bind (Minijson.member "version" doc) Minijson.to_int);
  Alcotest.(check (option int)) "bare clusters field" (Some 2)
    (Option.bind (Minijson.member "clusters" doc) Minijson.to_int);
  Alcotest.(check bool) "no machine field" true
    (Minijson.member "machine" doc = None);
  (* ...and a v2 document canonicalizes onto the machine field *)
  let migrated =
    replace_fields doc
      [
        ("clusters", Some (Minijson.int 4));
        ("move_latency", Some (Minijson.int 7));
      ]
  in
  (match Settings.of_json migrated with
  | Ok s ->
      Alcotest.(check bool) "v2 ints canonicalize to of_legacy" true
        (s.Settings.machine = Spec.of_legacy ~clusters:4 ~move_latency:7)
  | Error m -> Alcotest.fail m);
  (* a preset name works in the machine field *)
  let with_preset =
    replace_fields doc
      [
        ("clusters", None);
        ("move_latency", None);
        ("machine", Some (Minijson.str "ring8"));
      ]
  in
  (match Settings.of_json with_preset with
  | Ok s -> (
      match Spec.preset "ring8" with
      | Ok ring8 ->
          Alcotest.(check bool) "preset name resolves" true
            (s.Settings.machine = ring8)
      | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m);
  (* and the two forms cannot be mixed *)
  let conflicted =
    replace_fields doc [ ("machine", Some (Minijson.str "ring8")) ]
  in
  (match Settings.of_json conflicted with
  | Ok _ -> Alcotest.fail "machine + legacy ints accepted"
  | Error m ->
      Alcotest.(check bool) "conflict error names both forms" true
        (contains ~affix:"conflicts" m));
  (* unknown presets and malformed machine fields are rejected *)
  let unknown =
    replace_fields doc
      [
        ("clusters", None);
        ("move_latency", None);
        ("machine", Some (Minijson.str "torus9"));
      ]
  in
  (match Settings.of_json unknown with
  | Ok _ -> Alcotest.fail "unknown preset accepted"
  | Error _ -> ());
  let bad_type =
    replace_fields doc
      [
        ("clusters", None);
        ("move_latency", None);
        ("machine", Some (Minijson.int 3));
      ]
  in
  match Settings.of_json bad_type with
  | Ok _ -> Alcotest.fail "numeric machine field accepted"
  | Error m ->
      Alcotest.(check bool) "type error mentions the contract" true
        (contains ~affix:"preset name or a spec" m)

(* a non-legacy machine survives the settings round-trip as a v3 doc *)
let test_settings_v3_roundtrip () =
  match Spec.preset "mesh16" with
  | Error m -> Alcotest.fail m
  | Ok mesh16 -> (
      let s =
        { (Settings.default Partition.Methods.Gdp) with Settings.machine = mesh16 }
      in
      let doc = Settings.to_json s in
      Alcotest.(check (option int)) "non-legacy emits version 3" (Some 3)
        (Option.bind (Minijson.member "version" doc) Minijson.to_int);
      Alcotest.(check bool) "no bare clusters field" true
        (Minijson.member "clusters" doc = None);
      match Settings.of_json doc with
      | Ok s' -> Alcotest.(check bool) "round-trips" true (s' = s)
      | Error m -> Alcotest.fail m)

(* ------------------------------------------------------------------ *)
(* Contention smoke: a real benchmark on the multi-hop presets          *)

(* [Explain.explain] raises if the attribution identity is violated for
   any method, so explaining mpeg2enc on ring8 and mesh16 doubles as
   the identity check on contended machines; on top, distance and link
   contention must actually show up — nonzero [Transfer_wait] for the
   partitioned-memory methods (CI runs exactly this as its matrix
   smoke). *)
let test_contention_smoke () =
  let bench = Benchsuite.Suite.find "mpeg2enc" in
  let wait_idx = Attrib.category_index Attrib.Transfer_wait in
  List.iter
    (fun preset ->
      match Spec.preset preset with
      | Error m -> Alcotest.fail m
      | Ok spec ->
          let machine = Spec.resolve spec in
          let e = Gdp_report.Explain.explain_machine ~machine bench in
          List.iter
            (fun (r : Gdp_report.Explain.method_row) ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s: categories sum to cycles" preset
                   r.Gdp_report.Explain.mr_method)
                r.Gdp_report.Explain.mr_cycles
                (sum r.Gdp_report.Explain.mr_totals.Attrib.t_categories);
              if r.Gdp_report.Explain.mr_method <> "unified" then
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s: contention visible" preset
                     r.Gdp_report.Explain.mr_method)
                  true
                  (r.Gdp_report.Explain.mr_totals.Attrib.t_categories.(wait_idx)
                  > 0))
            e.Gdp_report.Explain.ex_rows)
    [ "ring8"; "mesh16" ]

let suite =
  [
    prop_bus_reproduces_seed;
    prop_random_machine;
    prop_spec_roundtrip;
    Alcotest.test_case "presets resolve" `Quick test_presets;
    Alcotest.test_case "ill-formed specs rejected" `Quick test_spec_errors;
    Alcotest.test_case "settings v2 -> v3 migration" `Quick
      test_settings_migration;
    Alcotest.test_case "settings v3 round-trip" `Quick
      test_settings_v3_roundtrip;
    Alcotest.test_case "ring8/mesh16 contention smoke" `Quick
      test_contention_smoke;
  ]
