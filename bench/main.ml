(* Benchmark harness regenerating every table and figure of the paper.

   Usage:
     dune exec bench/main.exe                -- run everything
     dune exec bench/main.exe -- fig2        -- one experiment
     dune exec bench/main.exe -- list        -- list experiment names
     dune exec bench/main.exe -- bechamel    -- bechamel timing of the
                                                partitioning passes

   Flags (before experiment names):
     --timings       print a per-experiment wall-time table at the end
     --trace FILE    record telemetry and write a Chrome trace
     --json FILE     dump per-experiment wall times and bechamel ns/run
                     estimates as machine-readable JSON
     --report DIR    write per-benchmark attribution reports (MD/CSV/JSON)
     --baseline FILE write the attribution baseline JSON (gdp-attrib/1)
     --check FILE    regression gate: diff the current run against a
                     committed baseline, exit non-zero on regressions
     --tolerance PCT allowed relative growth for --check (default 2%)
     -j, --jobs N    fan the standard sweep and the --check gate over N
                     worker processes (default 1 = sequential; results
                     are identical, the pool only changes wall clock —
                     with -j the sweep cost lands in the prefetch, so
                     per-figure wall times in --timings/--json shrink to
                     render time)
     --par-domains N intra-compile shared-memory parallelism for the
                     bechamel pseudo-experiment: one Par pool of N
                     domains is opened around the whole bechamel run
                     and extra "<bench>/<test>-parN" rows time the
                     parallel partitioning paths next to the
                     sequential ones (default 1 = no par rows)
     --check-partitioner FILE
                     regression gate on the bechamel ns/run rows of a
                     committed gdp-bench/1 snapshot (runs bechamel
                     first if it did not run this invocation; pass the
                     same --par-domains the baseline was recorded with
                     or its par rows count as disappeared)

   When only report/baseline/check/check-partitioner flags are given,
   the figure sweep is skipped — the gates run on their own.

   Experiments: table1 fig2 fig7 fig8a fig8b fig9a fig9b fig10
   compile-time ablate-merge ablate-imbalance ablate-clusters
   ablate-bug ablate-hetero scenario-matrix *)

open Gdp_core

let ppf = Fmt.stdout

let fig2 () = Experiments.render_figure2 ppf (Experiments.figure2 ())

let fig7 () =
  Experiments.render_performance ppf
    (Experiments.performance ~move_latency:1 ())
    ~figure_name:"Figure 7"

let fig8a () =
  Experiments.render_performance ppf
    (Experiments.performance ~move_latency:5 ())
    ~figure_name:"Figure 8(a)"

let fig8b () =
  Experiments.render_performance ppf
    (Experiments.performance ~move_latency:10 ())
    ~figure_name:"Figure 8(b)"

let fig9 which () =
  let bench = Benchsuite.Suite.find which in
  Exhaustive.render ppf (Exhaustive.run bench)

let fig10 () =
  Experiments.render_figure10 ppf (Experiments.performance ~move_latency:5 ())

let table1 () = Experiments.render_table1 ppf ()

(* set from -j before any experiment runs, so the scenario matrix (a
   6-machine sweep, much wider than any single figure) can fan its
   cells over the same worker pool as the standard-sweep prefetch *)
let sweep_jobs = ref 1

let scenario_matrix () =
  Experiments.render_scenario_matrix ppf
    (Experiments.scenario_sweep ~jobs:!sweep_jobs ())

let compile_time () =
  Experiments.render_compile_time ppf (Experiments.compile_time ())

let ablate_merge () =
  Ablations.render_merge_ablation ppf (Ablations.merge_ablation ())

let ablate_imbalance () =
  Ablations.render_imbalance ppf (Ablations.imbalance_sweep ())

let ablate_clusters () =
  Ablations.render_four_clusters ppf (Ablations.four_clusters ())

let ablate_bug () = Ablations.render_bug ppf (Ablations.bug_comparison ())

let ablate_hetero () =
  Ablations.render_heterogeneous ppf (Ablations.heterogeneous ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-timing of the partitioning passes (Section 4.5's
   claim is about compile time, so we measure the compiler, not the
   simulated program).  Besides the full methods, the multilevel graph
   partitioner is timed in isolation on the GDP program graphs of three
   benchmarks, so partitioner speedups are visible independently of
   RHOP and scheduling.                                                *)

let bechamel_benches = [ "rawcaudio"; "fir"; "mpeg2enc" ]

(** Run the bechamel suite; returns [(test name, ns/run estimate)] rows,
    sorted by name ([None] when OLS produced no estimate).  With [pool]
    (opened once by the caller so staged closures never pay a domain
    spawn), every test gets a parallel twin suffixed [-parN] driving
    the same work through the pool. *)
let bechamel_results ?pool () : (string * float option) list =
  let open Bechamel in
  let machine =
    Machine_spec.resolve (Machine_spec.of_legacy ~clusters:2 ~move_latency:5)
  in
  let prepared =
    List.map
      (fun name -> (name, Pipeline.prepare (Benchsuite.Suite.find name)))
      bechamel_benches
  in
  let tests =
    List.concat_map
      (fun (name, p) ->
        let ctx = Pipeline.context ~machine p in
        let method_tests =
          List.map
            (fun m ->
              Test.make
                ~name:(Fmt.str "%s/%s" name (Partition.Methods.name m))
                (Staged.stage (fun () -> ignore (Partition.Methods.run m ctx))))
            Partition.Methods.all
        in
        (* the METIS stand-in alone, on the real program graph *)
        let prob =
          Partition.Gdp.build_problem ~machine
            ~prog:ctx.Partition.Methods.prog ~merge:ctx.Partition.Methods.merge
            ~dfg:ctx.Partition.Methods.dfg
            ~profile:ctx.Partition.Methods.profile ()
        in
        let graph = prob.Partition.Gdp.graph
        and pcfg = prob.Partition.Gdp.pconfig in
        let partitioner_tests =
          [
            Test.make
              ~name:(Fmt.str "%s/partitioner-bisect" name)
              (Staged.stage (fun () ->
                   ignore (Graphpart.Partitioner.bisect ~config:pcfg graph)));
            Test.make
              ~name:(Fmt.str "%s/partitioner-kway4" name)
              (Staged.stage (fun () ->
                   ignore
                     (Graphpart.Partitioner.kway ~config:pcfg graph ~nparts:4)));
          ]
        in
        let par_tests =
          match pool with
          | None -> []
          | Some pool ->
              let d = Par.parallelism pool in
              List.map
                (fun m ->
                  Test.make
                    ~name:
                      (Fmt.str "%s/%s-par%d" name (Partition.Methods.name m) d)
                    (Staged.stage (fun () ->
                         ignore (Partition.Methods.run ~pool m ctx))))
                Partition.Methods.all
              @ [
                  Test.make
                    ~name:(Fmt.str "%s/partitioner-bisect-par%d" name d)
                    (Staged.stage (fun () ->
                         ignore
                           (Graphpart.Partitioner.bisect ~config:pcfg ~pool
                              graph)));
                  Test.make
                    ~name:(Fmt.str "%s/partitioner-kway4-par%d" name d)
                    (Staged.stage (fun () ->
                         ignore
                           (Graphpart.Partitioner.kway ~config:pcfg ~pool graph
                              ~nparts:4)));
                ]
        in
        method_tests @ partitioner_tests @ par_tests)
      prepared
  in
  let test = Test.make_grouped ~name:"partitioning" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.fold
    (fun _measure tbl acc ->
      Hashtbl.fold
        (fun name ols_result acc ->
          let est =
            match Bechamel.Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> Some est
            | Some [] | None -> None
          in
          (name, est) :: acc)
        tbl acc)
    merged []
  |> List.sort compare

let render_bechamel rows =
  Fmt.pr "@.measure: monotonic-clock (ns/run)@.";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Fmt.pr "  %-44s %12.0f ns/run@." name est
      | None -> Fmt.pr "  %-44s (no estimate)@." name)
    rows

(* ------------------------------------------------------------------ *)
(* Machine-readable dump (--json FILE): per-experiment wall times plus
   bechamel ns/run estimates.  BENCH_partitioner.json at the repo root
   is a committed snapshot of this output tracking the perf trajectory. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~(timings : (string * float) list)
    ~(bechamel : (string * float option) list) =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"schema\": \"gdp-bench/1\",\n";
  pf "  \"experiments\": [";
  List.iteri
    (fun i (name, secs) ->
      pf "%s\n    {\"name\": \"%s\", \"seconds\": %.6f}"
        (if i = 0 then "" else ",")
        (json_escape name) secs)
    timings;
  pf "\n  ],\n";
  pf "  \"bechamel\": [";
  List.iteri
    (fun i (name, est) ->
      pf "%s\n    {\"name\": \"%s\", \"ns_per_run\": %s}"
        (if i = 0 then "" else ",")
        (json_escape name)
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null"))
    bechamel;
  pf "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "wrote %s@." path

let experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig7", fig7);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig9a", fig9 "rawcaudio");
    ("fig9b", fig9 "rawdaudio");
    ("fig10", fig10);
    ("compile-time", compile_time);
    ("ablate-merge", ablate_merge);
    ("ablate-imbalance", ablate_imbalance);
    ("ablate-clusters", ablate_clusters);
    ("ablate-bug", ablate_bug);
    ("ablate-hetero", ablate_hetero);
    ("scenario-matrix", scenario_matrix);
  ]

(* each experiment runs under a telemetry span so the timing table, the
   trace and the Section-4.5 numbers all come from one clock *)
let run_timed name f =
  let (), secs = Telemetry.timed ("experiment:" ^ name) f in
  (name, secs)

let render_timings rows =
  Fmt.pr "@.Per-experiment wall time (telemetry clock)@.";
  Fmt.pr "%-18s %10s@." "experiment" "seconds";
  List.iter (fun (n, s) -> Fmt.pr "%-18s %10.3f@." n s) rows;
  Fmt.pr "%-18s %10.3f@." "TOTAL"
    (List.fold_left (fun a (_, s) -> a +. s) 0. rows)

(* ------------------------------------------------------------------ *)
(* Attribution reports and the metrics regression gate (--report,
   --baseline, --check).  Reports and baselines are produced at the
   paper's default 5-cycle latency; --check re-runs at whatever latency
   the baseline was recorded at.                                       *)

let attrib_latency = 5

let explanations ~move_latency =
  List.filter_map
    (fun (b : Benchsuite.Bench_intf.t) ->
      try Some (Gdp_report.Explain.explain_bench ~move_latency b)
      with exn ->
        Fmt.epr "warning: explain %s failed: %s@." b.Benchsuite.Bench_intf.name
          (Printexc.to_string exn);
        None)
    (Experiments.default_benches ())

(* The regression gate only needs the comparable rows, so with -j it
   fans one attribution job per benchmark over the process pool: each
   worker returns its benchmark's "gdp-attrib/1" document, which
   [Regress.of_json] reads back — same parser as the committed baseline
   file, so parallel gate rows are the sequential rows. *)
let gate_worker (payload : Minijson.t) : Minijson.t =
  match
    ( Option.bind (Minijson.member "bench" payload) Minijson.to_string,
      Option.bind (Minijson.member "move_latency" payload) Minijson.to_int )
  with
  | Some name, Some move_latency -> (
      let b = Benchsuite.Suite.find name in
      let e = Gdp_report.Explain.explain_bench ~move_latency b in
      let doc = Format.asprintf "%a" Gdp_report.Explain.to_json [ e ] in
      match Minijson.parse doc with
      | Ok v -> v
      | Error m -> failwith ("attribution document did not re-parse: " ^ m))
  | _ -> failwith "malformed gate job payload"

let gate_rows ~jobs ~move_latency : Gdp_report.Regress.row list =
  if jobs <= 1 then
    Gdp_report.Regress.rows_of (explanations ~move_latency)
  else begin
    let benches = Experiments.default_benches () in
    let job_of (b : Benchsuite.Bench_intf.t) =
      let name = b.Benchsuite.Bench_intf.name in
      Exec.job ~batch:name
        (Minijson.obj
           [
             ("bench", Minijson.str name);
             ("move_latency", Minijson.int move_latency);
           ])
    in
    let results = Exec.map ~jobs ~worker:gate_worker (List.map job_of benches) in
    List.concat
      (List.mapi
         (fun i (b : Benchsuite.Bench_intf.t) ->
           let name = b.Benchsuite.Bench_intf.name in
           match results.(i) with
           | Ok doc -> (
               match Gdp_report.Regress.of_json ~where:name doc with
               | Ok base -> base.Gdp_report.Regress.b_rows
               | Error m ->
                   Fmt.epr "warning: explain %s failed: %s@." name m;
                   [])
           | Error m ->
               Fmt.epr "warning: explain %s failed: %s@." name m;
               [])
         benches)
  end

(* Bechamel ns/run rows are wall-clock micro-benchmarks; the gate's job
   is catching order-of-magnitude collapses (a parallel path silently
   serializing, an accidental quadratic), not 2% jitter.  Hence a very
   generous fixed tolerance. *)
let partitioner_tolerance = 400.0

(** Returns [false] when the partitioner gate failed. *)
let run_check_partitioner ~(rows : (string * float option) list) path : bool =
  match Gdp_report.Regress.load_partitioner path with
  | Error m ->
      Fmt.epr "check-partitioner: cannot load baseline: %s@." m;
      false
  | Ok base ->
      let issues =
        Gdp_report.Regress.check_partitioner ~tolerance:partitioner_tolerance
          ~baseline:base rows
      in
      if issues = [] then begin
        Fmt.pr "check-partitioner: OK — %d baseline row(s) within %.0f%%@."
          (List.length base.Gdp_report.Regress.pb_rows)
          partitioner_tolerance;
        true
      end
      else begin
        List.iter
          (fun i ->
            Fmt.epr "check-partitioner: REGRESSION: %a@."
              Gdp_report.Regress.pp_issue i)
          issues;
        Fmt.epr "check-partitioner: %d regression(s) beyond %.0f%%@."
          (List.length issues) partitioner_tolerance;
        false
      end

let write_text_file path render =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  render ppf;
  Format.pp_print_flush ppf ();
  close_out oc;
  Fmt.pr "wrote %s@." path

(** Returns [false] when the regression gate failed. *)
let run_attrib ~jobs ~report ~baseline ~check ~tolerance : bool =
  (match report with
  | Some dir ->
      let files =
        Gdp_report.Explain.write_reports ~dir
          (explanations ~move_latency:attrib_latency)
      in
      List.iter (fun f -> Fmt.pr "wrote %s@." f) files
  | None -> ());
  (match baseline with
  | Some path ->
      let es = explanations ~move_latency:attrib_latency in
      write_text_file path (fun ppf -> Gdp_report.Explain.to_json ppf es)
  | None -> ());
  match check with
  | None -> true
  | Some path -> (
      match Gdp_report.Regress.load path with
      | Error m ->
          Fmt.epr "check: cannot load baseline: %s@." m;
          false
      | Ok base ->
          let current =
            gate_rows ~jobs ~move_latency:base.Gdp_report.Regress.b_latency
          in
          let issues =
            Gdp_report.Regress.check ~tolerance ~baseline:base ~current
          in
          if issues = [] then begin
            Fmt.pr
              "check: OK — %d baseline row(s) within %.1f%% (latency %d)@."
              (List.length base.Gdp_report.Regress.b_rows)
              tolerance base.Gdp_report.Regress.b_latency;
            true
          end
          else begin
            List.iter
              (fun i ->
                Fmt.epr "check: REGRESSION: %a@." Gdp_report.Regress.pp_issue i)
              issues;
            Fmt.epr "check: %d regression(s) beyond %.1f%%@."
              (List.length issues) tolerance;
            false
          end)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs = ref 1 in
  let par_domains = ref 1 in
  let check_part = ref None in
  let rec parse_flags timings trace json report baseline check tolerance =
    function
    | "--timings" :: rest ->
        parse_flags true trace json report baseline check tolerance rest
    | "--trace" :: file :: rest ->
        parse_flags timings (Some file) json report baseline check tolerance
          rest
    | [ "--trace" ] ->
        Fmt.epr "--trace needs a file argument@.";
        exit 1
    | "--json" :: file :: rest ->
        parse_flags timings trace (Some file) report baseline check tolerance
          rest
    | [ "--json" ] ->
        Fmt.epr "--json needs a file argument@.";
        exit 1
    | "--report" :: dir :: rest ->
        parse_flags timings trace json (Some dir) baseline check tolerance rest
    | [ "--report" ] ->
        Fmt.epr "--report needs a directory argument@.";
        exit 1
    | "--baseline" :: file :: rest ->
        parse_flags timings trace json report (Some file) check tolerance rest
    | [ "--baseline" ] ->
        Fmt.epr "--baseline needs a file argument@.";
        exit 1
    | "--check" :: file :: rest ->
        parse_flags timings trace json report baseline (Some file) tolerance
          rest
    | [ "--check" ] ->
        Fmt.epr "--check needs a file argument@.";
        exit 1
    | "--check-partitioner" :: file :: rest ->
        check_part := Some file;
        parse_flags timings trace json report baseline check tolerance rest
    | [ "--check-partitioner" ] ->
        Fmt.epr "--check-partitioner needs a file argument@.";
        exit 1
    | "--tolerance" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some t when t >= 0. ->
            parse_flags timings trace json report baseline check t rest
        | _ ->
            Fmt.epr "--tolerance needs a non-negative percentage@.";
            exit 1)
    | [ "--tolerance" ] ->
        Fmt.epr "--tolerance needs a percentage argument@.";
        exit 1
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := Exec.clamp_jobs n;
            parse_flags timings trace json report baseline check tolerance rest
        | _ ->
            Fmt.epr "-j needs a positive worker count@.";
            exit 1)
    | [ ("-j" | "--jobs") ] ->
        Fmt.epr "-j needs a worker count argument@.";
        exit 1
    | "--par-domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            par_domains := n;
            parse_flags timings trace json report baseline check tolerance rest
        | _ ->
            Fmt.epr "--par-domains needs a positive domain count@.";
            exit 1)
    | [ "--par-domains" ] ->
        Fmt.epr "--par-domains needs a domain count argument@.";
        exit 1
    | rest -> (timings, trace, json, report, baseline, check, tolerance, rest)
  in
  let timings, trace, json, report, baseline, check, tolerance, args =
    parse_flags false None None None None None 2.0 args
  in
  let jobs = !jobs in
  sweep_jobs := jobs;
  let par_domains = !par_domains in
  let check_part = !check_part in
  let attrib_only =
    args = []
    && (report <> None || baseline <> None || check <> None
       || check_part <> None)
  in
  if timings || trace <> None || json <> None then Telemetry.enable ();
  (* bechamel rows collected if the pseudo-experiment ran this invocation *)
  let bech = ref [] in
  let run_bechamel () =
    let rows =
      if par_domains >= 2 then
        (* one pool for the whole suite: domain spawn/teardown happens
           here, never inside a staged closure *)
        Par.with_pool ~domains:par_domains (fun pool ->
            bechamel_results ~pool ())
      else bechamel_results ()
    in
    bech := rows;
    render_bechamel rows
  in
  let finish rows =
    if timings then render_timings rows;
    (match trace with
    | Some path ->
        Telemetry.Sink.write_chrome_trace path (Telemetry.snapshot ())
    | None -> ());
    (match json with
    | Some path -> write_json path ~timings:rows ~bechamel:!bech
    | None -> ());
    (* the attribution gate forks worker processes (-j) and must run
       before the partitioner gate can spawn any domain: once a process
       has created a domain, OCaml 5 forbids Unix.fork for good *)
    let attrib_ok = run_attrib ~jobs ~report ~baseline ~check ~tolerance in
    let part_ok =
      match check_part with
      | None -> true
      | Some path ->
          if !bech = [] then run_bechamel ();
          run_check_partitioner ~rows:!bech path
    in
    if not (part_ok && attrib_ok) then exit 1
  in
  (* which standard-sweep latencies the named experiments will need; with
     -j the whole set is prefetched through the process pool up front,
     and the figures then render from cache hits *)
  let sweep_latencies names =
    let needs =
      [
        ("fig2", [ 1; 5; 10 ]);
        ("fig7", [ 1 ]);
        ("fig8a", [ 5 ]);
        ("fig8b", [ 10 ]);
        ("fig10", [ 5 ]);
      ]
    in
    List.sort_uniq compare
      (List.concat_map
         (fun n -> Option.value ~default:[] (List.assoc_opt n needs))
         names)
  in
  let prefetch_for names =
    if jobs > 1 then
      match sweep_latencies names with
      | [] -> ()
      | latencies -> Experiments.prefetch ~jobs ~latencies ()
  in
  match args with
  | [] when attrib_only -> finish []
  | [] ->
      Fmt.pr
        "Reproducing: Chu & Mahlke, Compiler-directed Data Partitioning for \
         Multicluster Processors (CGO 2006)@.";
      prefetch_for (List.map fst experiments);
      finish
        (List.map
           (fun (name, f) ->
             Fmt.pr "@.===================== %s =====================@." name;
             run_timed name f)
           experiments)
  | [ "list" ] ->
      List.iter (fun (n, _) -> Fmt.pr "%s@." n) experiments;
      Fmt.pr "bechamel@."
  | names ->
      prefetch_for names;
      finish
        (List.map
           (fun n ->
             match
               if n = "bechamel" then Some run_bechamel
               else List.assoc_opt n experiments
             with
             | Some f -> run_timed n f
             | None ->
                 Fmt.epr "unknown experiment %s (try: list)@." n;
                 exit 1)
           names)
