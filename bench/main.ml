(* Benchmark harness regenerating every table and figure of the paper.

   Usage:
     dune exec bench/main.exe                -- run everything
     dune exec bench/main.exe -- fig2        -- one experiment
     dune exec bench/main.exe -- list        -- list experiment names
     dune exec bench/main.exe -- bechamel    -- bechamel timing of the
                                                partitioning passes

   Flags (before experiment names):
     --timings       print a per-experiment wall-time table at the end
     --trace FILE    record telemetry and write a Chrome trace

   Experiments: table1 fig2 fig7 fig8a fig8b fig9a fig9b fig10
   compile-time ablate-merge ablate-imbalance ablate-clusters *)

open Gdp_core

let ppf = Fmt.stdout

let fig2 () = Experiments.render_figure2 ppf (Experiments.figure2 ())

let fig7 () =
  Experiments.render_performance ppf
    (Experiments.performance ~move_latency:1 ())
    ~figure_name:"Figure 7"

let fig8a () =
  Experiments.render_performance ppf
    (Experiments.performance ~move_latency:5 ())
    ~figure_name:"Figure 8(a)"

let fig8b () =
  Experiments.render_performance ppf
    (Experiments.performance ~move_latency:10 ())
    ~figure_name:"Figure 8(b)"

let fig9 which () =
  let bench = Benchsuite.Suite.find which in
  Exhaustive.render ppf (Exhaustive.run bench)

let fig10 () =
  Experiments.render_figure10 ppf (Experiments.performance ~move_latency:5 ())

let table1 () = Experiments.render_table1 ppf ()

let compile_time () =
  Experiments.render_compile_time ppf (Experiments.compile_time ())

let ablate_merge () =
  Ablations.render_merge_ablation ppf (Ablations.merge_ablation ())

let ablate_imbalance () =
  Ablations.render_imbalance ppf (Ablations.imbalance_sweep ())

let ablate_clusters () =
  Ablations.render_four_clusters ppf (Ablations.four_clusters ())

let ablate_bug () = Ablations.render_bug ppf (Ablations.bug_comparison ())

let ablate_hetero () =
  Ablations.render_heterogeneous ppf (Ablations.heterogeneous ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-timing of the partitioning passes (Section 4.5's
   claim is about compile time, so we measure the compiler, not the
   simulated program).                                                 *)

let bechamel () =
  let open Bechamel in
  let machine = Vliw_machine.paper_machine ~move_latency:5 () in
  let prepared =
    List.map
      (fun name -> (name, Pipeline.prepare (Benchsuite.Suite.find name)))
      [ "rawcaudio"; "fir"; "mpeg2enc" ]
  in
  let tests =
    List.concat_map
      (fun (name, p) ->
        let ctx = Pipeline.context ~machine p in
        List.map
          (fun m ->
            Test.make
              ~name:(Fmt.str "%s/%s" name (Partition.Methods.name m))
              (Staged.stage (fun () -> ignore (Partition.Methods.run m ctx))))
          Partition.Methods.all)
      prepared
  in
  let test = Test.make_grouped ~name:"partitioning" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Fmt.pr "@.measure: %s@." measure;
      let rows =
        Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
        |> List.sort compare
      in
      List.iter
        (fun (name, ols_result) ->
          match Bechamel.Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Fmt.pr "  %-36s %12.0f ns/run@." name est
          | Some [] | None -> Fmt.pr "  %-36s (no estimate)@." name)
        rows)
    merged

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig7", fig7);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig9a", fig9 "rawcaudio");
    ("fig9b", fig9 "rawdaudio");
    ("fig10", fig10);
    ("compile-time", compile_time);
    ("ablate-merge", ablate_merge);
    ("ablate-imbalance", ablate_imbalance);
    ("ablate-clusters", ablate_clusters);
    ("ablate-bug", ablate_bug);
    ("ablate-hetero", ablate_hetero);
  ]

(* each experiment runs under a telemetry span so the timing table, the
   trace and the Section-4.5 numbers all come from one clock *)
let run_timed name f =
  let (), secs = Telemetry.timed ("experiment:" ^ name) f in
  (name, secs)

let render_timings rows =
  Fmt.pr "@.Per-experiment wall time (telemetry clock)@.";
  Fmt.pr "%-18s %10s@." "experiment" "seconds";
  List.iter (fun (n, s) -> Fmt.pr "%-18s %10.3f@." n s) rows;
  Fmt.pr "%-18s %10.3f@." "TOTAL"
    (List.fold_left (fun a (_, s) -> a +. s) 0. rows)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse_flags timings trace = function
    | "--timings" :: rest -> parse_flags true trace rest
    | "--trace" :: file :: rest -> parse_flags timings (Some file) rest
    | [ "--trace" ] ->
        Fmt.epr "--trace needs a file argument@.";
        exit 1
    | rest -> (timings, trace, rest)
  in
  let timings, trace, args = parse_flags false None args in
  if timings || trace <> None then Telemetry.enable ();
  let finish rows =
    if timings then render_timings rows;
    match trace with
    | Some path ->
        Telemetry.Sink.write_chrome_trace path (Telemetry.snapshot ())
    | None -> ()
  in
  match args with
  | [] ->
      Fmt.pr
        "Reproducing: Chu & Mahlke, Compiler-directed Data Partitioning for \
         Multicluster Processors (CGO 2006)@.";
      finish
        (List.map
           (fun (name, f) ->
             Fmt.pr "@.===================== %s =====================@." name;
             run_timed name f)
           experiments)
  | [ "list" ] ->
      List.iter (fun (n, _) -> Fmt.pr "%s@." n) experiments;
      Fmt.pr "bechamel@."
  | [ "bechamel" ] -> bechamel ()
  | names ->
      finish
        (List.map
           (fun n ->
             match List.assoc_opt n experiments with
             | Some f -> run_timed n f
             | None ->
                 Fmt.epr "unknown experiment %s (try: list)@." n;
                 exit 1)
           names)
